"""Incremental analysis cache for ``repro lint`` / ``repro flow``.

``--changed-only`` re-analyzes only what changed: per-file checker
findings are keyed on each file's content hash, and the whole-program
FLOW pass — which cannot be partially reused, since any file can change
any function summary — is keyed on the digest of *all* file hashes, so
an unchanged tree skips it entirely (the common CI case: the lint step
populates the cache and the SARIF export step reuses it).

Invalidation is content-addressed and self-salting: the salt hashes
the sources of :mod:`repro.lint` and :mod:`repro.flow` themselves, so
editing any rule or the engine discards every entry.  Raw (pre-noqa,
pre-baseline) findings are cached, so suppression or baseline edits
never require re-analysis.  The cache directory defaults to
``.repro-lint-cache/`` and is gitignored.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from .findings import Finding

__all__ = ["AnalysisCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = Path(".repro-lint-cache")

_CACHE_VERSION = 1
_FIELDS = ("path", "line", "col", "rule", "message", "snippet")


def _tool_salt() -> str:
    """Hash of the analyzer's own sources: new rules, new cache."""
    h = hashlib.sha256()
    here = Path(__file__).resolve().parent
    flow = here.parent / "flow"
    for pkg in (here, flow):
        if not pkg.is_dir():
            continue
        for p in sorted(pkg.rglob("*.py")):
            h.update(p.name.encode())
            try:
                h.update(p.read_bytes())
            except OSError:  # pragma: no cover - racing an editor
                pass
    return h.hexdigest()[:16]


def _encode(findings: list[Finding]) -> list[dict]:
    return [
        {field: getattr(f, field) for field in _FIELDS} for f in findings
    ]


def _decode(rows: list[dict]) -> list[Finding]:
    return [Finding(**{field: row[field] for field in _FIELDS}) for row in rows]


class AnalysisCache:
    """Content-hash keyed store of raw per-file and project findings."""

    def __init__(self, directory: Path = DEFAULT_CACHE_DIR):
        self.directory = Path(directory)
        self.path = self.directory / "analysis.json"
        self.salt = _tool_salt()
        self._files: dict[str, dict] = {}
        self._project: dict = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            data.get("version") != _CACHE_VERSION
            or data.get("salt") != self.salt
        ):
            return  # analyzer changed: start cold
        files = data.get("files")
        project = data.get("project")
        if isinstance(files, dict):
            self._files = files
        if isinstance(project, dict):
            self._project = project

    # -- per-file checker findings ------------------------------------
    @staticmethod
    def file_hash(source: str) -> str:
        return hashlib.sha256(source.encode()).hexdigest()[:24]

    def get_file(self, relpath: str, digest: str) -> Optional[list[Finding]]:
        entry = self._files.get(relpath)
        if entry is None or entry.get("hash") != digest:
            self.misses += 1
            return None
        self.hits += 1
        return _decode(entry["findings"])

    def put_file(
        self, relpath: str, digest: str, findings: list[Finding]
    ) -> None:
        self._files[relpath] = {"hash": digest, "findings": _encode(findings)}
        self._dirty = True

    # -- whole-program (project checker) findings ---------------------
    @staticmethod
    def tree_hash(digests: dict[str, str]) -> str:
        h = hashlib.sha256()
        for relpath in sorted(digests):
            h.update(relpath.encode())
            h.update(digests[relpath].encode())
        return h.hexdigest()[:24]

    def get_project(self, tree_digest: str) -> Optional[list[Finding]]:
        if self._project.get("hash") != tree_digest:
            self.misses += 1
            return None
        self.hits += 1
        return _decode(self._project["findings"])

    def put_project(
        self, tree_digest: str, findings: list[Finding]
    ) -> None:
        self._project = {"hash": tree_digest, "findings": _encode(findings)}
        self._dirty = True

    # -- persistence --------------------------------------------------
    def save(self) -> None:
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _CACHE_VERSION,
            "salt": self.salt,
            "files": self._files,
            "project": self._project,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(self.path)
        self._dirty = False
