"""The :class:`Finding` record every checker emits.

A finding is one rule violation at one source location.  Its
:meth:`fingerprint` deliberately excludes the line number: baselines
match on ``(rule, path, snippet-hash)`` so an unrelated edit that
shifts a grandfathered finding up or down the file does not expire its
baseline entry, while any edit to the offending line itself does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # display path (posix, repo-relative when possible)
    line: int  # 1-based
    col: int  # 0-based, as ast reports it
    rule: str  # e.g. "DET001"
    message: str
    snippet: str = ""  # the stripped source line the finding sits on

    @property
    def prefix(self) -> str:
        """Rule family, e.g. ``DET`` for ``DET001``."""
        return self.rule.rstrip("0123456789")

    def fingerprint(self) -> str:
        """Line-number-independent identity used by baseline matching."""
        blob = "\x1f".join((self.rule, self.path, self.snippet))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }
