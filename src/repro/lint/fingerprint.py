"""Field fingerprints of cache-key-relevant definitions.

Result-cache keys hash ``(SCHEMA_VERSION, label, kind, Workload fields,
seed, ...)`` (see :mod:`repro.experiments.cache`), and service job keys
embed the same version (:mod:`repro.service.jobs`).  Editing any of the
dataclasses or constants that feed those keys **without bumping**
``SCHEMA_VERSION`` silently serves stale cached numbers for new
semantics — the worst kind of reproduction bug, invisible until someone
diffs a figure.

This module computes a content fingerprint per watched definition —
for a dataclass, the ordered ``(field name, annotation, has-default)``
triples plus base-class names; for a constant, its unparsed value
expression — from the **AST only** (no imports, so linting never
executes simulation code).  The committed snapshot lives next to this
file (``schema_fingerprint.json``); the SCHEMA checker diffs the live
tree against it and demands either a version bump or a regeneration via
``python -m repro lint --update-schema-fingerprint``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = [
    "WatchedFile",
    "DEFAULT_WATCH",
    "FINGERPRINT_FILENAME",
    "default_fingerprint_path",
    "FingerprintState",
    "compute_fingerprints",
    "write_fingerprints",
]

FINGERPRINT_FILENAME = "schema_fingerprint.json"

#: the constant whose bump invalidates every cache entry
SCHEMA_VERSION_CONST = "SCHEMA_VERSION"


@dataclass(frozen=True)
class WatchedFile:
    """One source file whose named definitions feed cache keys."""

    relpath: str  # posix, relative to the repro package root
    classes: tuple[str, ...] = ()
    constants: tuple[str, ...] = ()


#: every definition that participates in cache/job key construction
DEFAULT_WATCH: tuple[WatchedFile, ...] = (
    WatchedFile(
        "experiments/cache.py",
        constants=(SCHEMA_VERSION_CONST, "_CELL_FIELDS"),
    ),
    WatchedFile("experiments/configs.py", classes=("ExpConfig",)),
    WatchedFile("experiments/runner.py", classes=("Workload",)),
    WatchedFile(
        "service/jobs.py",
        classes=(
            "JobSpec",
            "CellJob",
            "MatrixJob",
            "FigureJob",
            "HeadlineJob",
            "LifetimeJob",
            "NetfaultJob",
        ),
    ),
    WatchedFile("faults/plan.py", classes=("FaultSpec",)),
    WatchedFile("lifetime/wear.py", classes=("WearPolicy",)),
    WatchedFile("lifetime/aging.py", classes=("AgingSpec",)),
)


def default_fingerprint_path() -> Path:
    """The committed snapshot that ships inside the lint package."""
    return Path(__file__).resolve().with_name(FINGERPRINT_FILENAME)


@dataclass
class FingerprintState:
    """Fingerprints computed from one source tree."""

    schema_version: Optional[int]
    fingerprints: dict[str, str]  # "relpath::name" -> sha256 hex
    #: anchor for findings: "relpath::name" -> (relpath, lineno)
    locations: dict[str, tuple[str, int]]
    missing: list[str]  # watched files or names not found

    def to_payload(self) -> dict[str, object]:
        return {
            "version": 1,
            "comment": (
                "Field fingerprints of cache-key-relevant definitions. "
                "Regenerate with `python -m repro lint "
                "--update-schema-fingerprint` after bumping SCHEMA_VERSION. "
                "Never hand-edit: the SCHEMA lint rule diffs this file."
            ),
            "schema_version": self.schema_version,
            "fingerprints": dict(sorted(self.fingerprints.items())),
        }


def _class_shape(node: ast.ClassDef) -> dict[str, object]:
    fields: list[list[object]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append(
                [
                    stmt.target.id,
                    ast.unparse(stmt.annotation),
                    stmt.value is not None,
                ]
            )
    bases = [ast.unparse(b) for b in node.bases]
    return {"name": node.name, "bases": bases, "fields": fields}


def _digest(shape: object) -> str:
    blob = json.dumps(shape, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def compute_fingerprints(
    root: Path, watch: tuple[WatchedFile, ...] = DEFAULT_WATCH
) -> FingerprintState:
    """Fingerprint every watched definition under ``root``."""
    state = FingerprintState(
        schema_version=None, fingerprints={}, locations={}, missing=[]
    )
    for wf in watch:
        path = root / wf.relpath
        if not path.exists():
            state.missing.append(wf.relpath)
            continue
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError:
            state.missing.append(wf.relpath)
            continue
        found_classes: dict[str, ast.ClassDef] = {}
        found_consts: dict[str, ast.Assign] = {}
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name in wf.classes:
                found_classes[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in wf.constants
                    ):
                        found_consts[target.id] = stmt
        for name in wf.classes:
            key = f"{wf.relpath}::{name}"
            node = found_classes.get(name)
            if node is None:
                state.missing.append(key)
                continue
            state.fingerprints[key] = _digest(_class_shape(node))
            state.locations[key] = (wf.relpath, node.lineno)
        for name in wf.constants:
            key = f"{wf.relpath}::{name}"
            stmt2 = found_consts.get(name)
            if stmt2 is None:
                state.missing.append(key)
                continue
            state.locations[key] = (wf.relpath, stmt2.lineno)
            if name == SCHEMA_VERSION_CONST:
                value = stmt2.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, int
                ):
                    state.schema_version = value.value
                # SCHEMA_VERSION participates via its literal value, not a
                # fingerprint: bumping it must NOT itself look like an
                # unfingerprinted change.
                continue
            state.fingerprints[key] = _digest(
                {"name": name, "value": ast.unparse(stmt2.value)}
            )
    return state


def write_fingerprints(
    root: Path,
    out_path: Path,
    watch: tuple[WatchedFile, ...] = DEFAULT_WATCH,
) -> FingerprintState:
    """Regenerate the committed snapshot; returns the computed state."""
    state = compute_fingerprints(root, watch)
    out_path.write_text(
        json.dumps(state.to_payload(), indent=2, sort_keys=True) + "\n"
    )
    return state
