"""File discovery, checker dispatch, noqa and baseline filtering."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from .baseline import Baseline, BaselineEntry
from .cache import AnalysisCache
from .context import FileContext, LintConfig
from .findings import Finding
from .noqa import is_suppressed, noqa_lines
from .registry import file_checkers, project_checkers

__all__ = ["LintResult", "lint_paths", "iter_python_files"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    baselined: list[Finding] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    unjustified_entries: list[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0  # count silenced by `# repro: noqa`
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline_entries": [e.to_dict() for e in self.stale_entries],
            "unjustified_baseline_entries": [
                e.to_dict() for e in self.unjustified_entries
            ],
            "summary": {
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
                "stale_baseline_entries": len(self.stale_entries),
                "unjustified_baseline_entries": len(self.unjustified_entries),
                "ok": self.ok,
            },
        }


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, stably ordered."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
                and not any(part.endswith(".egg-info") for part in p.parts)
            )
        else:
            candidates = [path]
        for c in candidates:
            r = c.resolve()
            if r not in seen:
                seen.add(r)
                yield c


def _display_path(path: Path) -> str:
    """Posix path relative to the CWD when possible (baseline identity)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()


def _build_context(path: Path, config: LintConfig) -> FileContext | Finding:
    relpath = _display_path(path)
    try:
        source = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(relpath, 1, 0, "PARSE", f"unreadable file: {exc}")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return Finding(
            relpath,
            exc.lineno or 1,
            (exc.offset or 1) - 1,
            "PARSE",
            f"syntax error: {exc.msg}",
        )
    return FileContext(
        path=path, relpath=relpath, source=source, tree=tree, config=config
    )


def _any_selected(cls: type, config: LintConfig) -> bool:
    codes = getattr(cls, "codes", {})
    return config.select is None or any(config.selects(c) for c in codes)


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    cache: Optional[AnalysisCache] = None,
) -> LintResult:
    """Lint ``paths`` and fold in noqa suppressions and the baseline.

    ``cache`` (the ``--changed-only`` path) reuses raw findings for
    files whose content hash is unchanged, and the whole-program pass
    for an unchanged tree; with a cache active every checker runs (or
    is reused) so cached entries are always complete, and ``select``
    filtering stays post-hoc.  Without a cache, checkers none of whose
    codes are selected are skipped outright.
    """
    config = config or LintConfig()
    baseline = baseline or Baseline()
    result = LintResult()

    contexts: list[FileContext] = []
    raw: list[Finding] = []
    for path in iter_python_files(paths):
        built = _build_context(path, config)
        if isinstance(built, Finding):
            raw.append(built)  # a PARSE finding, never suppressible
            result.files_scanned += 1
            continue
        contexts.append(built)
        result.files_scanned += 1

    if cache is None:
        file_cls = [c for c in file_checkers() if _any_selected(c, config)]
        project_cls = [
            c for c in project_checkers() if _any_selected(c, config)
        ]
    else:
        file_cls = list(file_checkers())
        project_cls = list(project_checkers())

    checkers = [cls() for cls in file_cls]
    digests: dict[str, str] = {}
    noqa_by_path: dict[str, dict[int, frozenset[str] | None]] = {}
    for ctx in contexts:
        noqa_by_path[ctx.relpath] = noqa_lines(ctx.source)
        if cache is not None:
            digest = AnalysisCache.file_hash(ctx.source)
            digests[ctx.relpath] = digest
            cached = cache.get_file(ctx.relpath, digest)
            if cached is not None:
                raw.extend(cached)
                continue
            fresh: list[Finding] = []
            for checker in checkers:
                fresh.extend(checker.check(ctx))
            cache.put_file(ctx.relpath, digest, fresh)
            raw.extend(fresh)
        else:
            for checker in checkers:
                raw.extend(checker.check(ctx))

    if cache is not None:
        tree_digest = AnalysisCache.tree_hash(digests)
        project_findings = cache.get_project(tree_digest)
        if project_findings is None:
            project_findings = []
            for pchecker_cls in project_cls:
                project_findings.extend(
                    pchecker_cls().check_project(contexts, config)
                )
            cache.put_project(tree_digest, project_findings)
        raw.extend(project_findings)
        cache.save()
    else:
        for pchecker_cls in project_cls:
            raw.extend(pchecker_cls().check_project(contexts, config))

    kept: list[Finding] = []
    for f in raw:
        if not config.selects(f.rule) and f.rule != "PARSE":
            continue
        noqa = noqa_by_path.get(f.path, {})
        if f.rule != "PARSE" and is_suppressed(f, noqa):
            result.suppressed += 1
            continue
        kept.append(f)

    new, grandfathered, stale = baseline.partition(kept)
    result.findings = sorted(new)
    result.baselined = sorted(grandfathered)
    result.stale_entries = stale
    result.unjustified_entries = baseline.unjustified()
    return result
