"""File discovery, checker dispatch, noqa and baseline filtering."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .baseline import Baseline, BaselineEntry
from .context import FileContext, LintConfig
from .findings import Finding
from .noqa import is_suppressed, noqa_lines
from .registry import file_checkers, project_checkers

__all__ = ["LintResult", "lint_paths", "iter_python_files"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    baselined: list[Finding] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    unjustified_entries: list[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0  # count silenced by `# repro: noqa`
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline_entries": [e.to_dict() for e in self.stale_entries],
            "unjustified_baseline_entries": [
                e.to_dict() for e in self.unjustified_entries
            ],
            "summary": {
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
                "stale_baseline_entries": len(self.stale_entries),
                "unjustified_baseline_entries": len(self.unjustified_entries),
                "ok": self.ok,
            },
        }


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, stably ordered."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
                and not any(part.endswith(".egg-info") for part in p.parts)
            )
        else:
            candidates = [path]
        for c in candidates:
            r = c.resolve()
            if r not in seen:
                seen.add(r)
                yield c


def _display_path(path: Path) -> str:
    """Posix path relative to the CWD when possible (baseline identity)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()


def _build_context(path: Path, config: LintConfig) -> FileContext | Finding:
    relpath = _display_path(path)
    try:
        source = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(relpath, 1, 0, "PARSE", f"unreadable file: {exc}")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return Finding(
            relpath,
            exc.lineno or 1,
            (exc.offset or 1) - 1,
            "PARSE",
            f"syntax error: {exc.msg}",
        )
    return FileContext(
        path=path, relpath=relpath, source=source, tree=tree, config=config
    )


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint ``paths`` and fold in noqa suppressions and the baseline."""
    config = config or LintConfig()
    baseline = baseline or Baseline()
    result = LintResult()

    contexts: list[FileContext] = []
    raw: list[Finding] = []
    for path in iter_python_files(paths):
        built = _build_context(path, config)
        if isinstance(built, Finding):
            raw.append(built)  # a PARSE finding, never suppressible
            result.files_scanned += 1
            continue
        contexts.append(built)
        result.files_scanned += 1

    checkers = [cls() for cls in file_checkers()]
    noqa_by_path: dict[str, dict[int, frozenset[str] | None]] = {}
    for ctx in contexts:
        noqa_by_path[ctx.relpath] = noqa_lines(ctx.source)
        for checker in checkers:
            raw.extend(checker.check(ctx))
    for pchecker_cls in project_checkers():
        raw.extend(pchecker_cls().check_project(contexts, config))

    kept: list[Finding] = []
    for f in raw:
        if not config.selects(f.rule) and f.rule != "PARSE":
            continue
        noqa = noqa_by_path.get(f.path, {})
        if f.rule != "PARSE" and is_suppressed(f, noqa):
            result.suppressed += 1
            continue
        kept.append(f)

    new, grandfathered, stale = baseline.partition(kept)
    result.findings = sorted(new)
    result.baselined = sorted(grandfathered)
    result.stale_entries = stale
    result.unjustified_entries = baseline.unjustified()
    return result
