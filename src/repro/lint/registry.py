"""Checker base classes and the rule registry.

A *file checker* sees one parsed file at a time; a *project checker*
sees every scanned file at once (the SCHEMA fingerprint diff is
inherently cross-file).  Registration is by decorator so adding a rule
module under :mod:`repro.lint.rules` is the whole integration surface.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .context import FileContext, LintConfig
from .findings import Finding

__all__ = [
    "FileChecker",
    "ProjectChecker",
    "register",
    "file_checkers",
    "project_checkers",
    "all_rule_codes",
    "dotted_name",
]

_FILE_CHECKERS: list[type["FileChecker"]] = []
_PROJECT_CHECKERS: list[type["ProjectChecker"]] = []


class FileChecker:
    """One rule family evaluated file by file over the AST."""

    #: rule code -> one-line description (shown by ``--list-rules``)
    codes: dict[str, str] = {}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


class ProjectChecker:
    """One rule family evaluated once over the whole scanned file set."""

    codes: dict[str, str] = {}

    def check_project(
        self, ctxs: list[FileContext], config: LintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


def register(cls: type) -> type:
    if issubclass(cls, FileChecker):
        _FILE_CHECKERS.append(cls)
    elif issubclass(cls, ProjectChecker):
        _PROJECT_CHECKERS.append(cls)
    else:  # pragma: no cover - registration misuse
        raise TypeError(f"{cls!r} is neither a FileChecker nor a ProjectChecker")
    return cls


def _load_rules() -> None:
    from . import rules  # noqa: F401  (import side effect: registration)


def file_checkers() -> list[type[FileChecker]]:
    _load_rules()
    return list(_FILE_CHECKERS)


def project_checkers() -> list[type[ProjectChecker]]:
    _load_rules()
    return list(_PROJECT_CHECKERS)


def all_rule_codes() -> dict[str, str]:
    """Every registered rule code with its description, sorted."""
    codes: dict[str, str] = {}
    for cls in file_checkers():
        codes.update(cls.codes)
    for pcls in project_checkers():
        codes.update(pcls.codes)
    return dict(sorted(codes.items()))


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def iter_args(call: ast.Call) -> Iterable[ast.expr]:
    """Positional (including starred) and keyword argument values."""
    for a in call.args:
        yield a.value if isinstance(a, ast.Starred) else a
    for kw in call.keywords:
        yield kw.value
