"""Per-run configuration and per-file checker context."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .fingerprint import WatchedFile

__all__ = ["LintConfig", "FileContext", "DET_GATED_DIRS"]

#: directories (anywhere on a file's path) where nondeterminism is a bug:
#: everything here feeds simulated numbers, cache keys or fault decisions
DET_GATED_DIRS = frozenset(
    {"sim", "ssd", "nvm", "fs", "cluster", "faults", "lifetime"}
)


@dataclass(frozen=True)
class LintConfig:
    """Knobs for one lint run.

    ``select`` filters to the given rule codes or families (``DET``
    matches ``DET001``...).  The ``schema_*`` fields let tests point the
    SCHEMA checker at a fixture tree; by default the checker finds the
    real package in the scanned files and the committed fingerprint
    file that ships inside :mod:`repro.lint`.
    """

    select: Optional[frozenset[str]] = None
    det_dirs: frozenset[str] = DET_GATED_DIRS
    schema_fingerprint_path: Optional[Path] = None
    schema_root: Optional[Path] = None
    schema_watch: Optional[tuple["WatchedFile", ...]] = None

    def selects(self, rule: str) -> bool:
        if self.select is None:
            return True
        family = rule.rstrip("0123456789")
        return rule in self.select or family in self.select


@dataclass
class FileContext:
    """Everything a per-file checker needs about one source file."""

    path: Path  # absolute filesystem path
    relpath: str  # posix display path (baseline identity)
    source: str
    tree: ast.Module
    config: LintConfig
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    # -- helpers --------------------------------------------------------
    @property
    def det_gated(self) -> bool:
        """Is this file inside a determinism-gated directory?"""
        parts = Path(self.relpath).parts[:-1]  # directories only
        return any(p in self.config.det_dirs for p in parts)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.relpath,
            line=line,
            col=col,
            rule=rule,
            message=message,
            snippet=self.snippet(line),
        )
