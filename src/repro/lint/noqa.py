"""``# repro: noqa[RULE]`` suppression comments.

Three spellings, tightest first:

* ``# repro: noqa[DET003]`` — suppress exactly one rule on this line,
* ``# repro: noqa[DET]`` — suppress a whole rule family on this line,
* ``# repro: noqa`` — suppress everything on this line (discouraged;
  reviewers should ask for a rule code).

Comments are found with :mod:`tokenize`, not a per-line regex, so a
``# repro: noqa`` inside a string literal never suppresses anything.
"""

from __future__ import annotations

import io
import re
import tokenize

from .findings import Finding

__all__ = ["noqa_lines", "is_suppressed"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: line -> None (blanket suppression) or the set of rule codes/families
NoqaMap = dict[int, frozenset[str] | None]


def noqa_lines(source: str) -> NoqaMap:
    """Map line numbers to the suppressions their comments declare."""
    out: NoqaMap = {}
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if m is None:
                continue
            line = tok.start[0]
            rules = m.group("rules")
            if rules is None:
                out[line] = None  # blanket
            else:
                names = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                )
                prior = out.get(line)
                if line in out and prior is None:
                    continue  # an earlier blanket wins
                out[line] = names | (prior or frozenset())
    except (SyntaxError, tokenize.TokenError):
        # Unparseable files produce a PARSE finding elsewhere; no
        # suppression info is recoverable.
        pass
    return out


def is_suppressed(finding: Finding, noqa: NoqaMap) -> bool:
    """Does a ``# repro: noqa`` on the finding's line cover its rule?"""
    if finding.line not in noqa:
        return False
    rules = noqa[finding.line]
    if rules is None:
        return True
    return finding.rule in rules or finding.prefix in rules
