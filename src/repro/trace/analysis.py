"""Trace analysis: the Figure-6 access-pattern comparison.

Figure 6 plots the block access pattern of the OoC workload at two
levels: the POSIX stream at the compute node (bottom, largely
sequential ramps) and the sub-GPFS block stream at the ION (top,
scattered by striping).  This module extracts those address sequences
and quantifies the difference (sequentiality, stride entropy, span).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fs.base import FileSystemModel
from .posix import PosixTrace

__all__ = ["AccessPattern", "posix_pattern", "device_pattern", "pattern_report"]


@dataclass
class AccessPattern:
    """An address sequence plus its derived pattern statistics."""

    label: str
    addresses: np.ndarray  # byte address of each access, in issue order
    sizes: np.ndarray

    @property
    def n(self) -> int:
        return len(self.addresses)

    @property
    def sequential_fraction(self) -> float:
        """Fraction of accesses continuing the previous one."""
        if self.n < 2:
            return 1.0
        follows = self.addresses[1:] == self.addresses[:-1] + self.sizes[:-1]
        return float(np.mean(follows))

    @property
    def mean_abs_stride(self) -> float:
        """Mean absolute jump between consecutive accesses (bytes)."""
        if self.n < 2:
            return 0.0
        jumps = self.addresses[1:] - (self.addresses[:-1] + self.sizes[:-1])
        return float(np.mean(np.abs(jumps)))

    @property
    def address_span(self) -> int:
        """Extent of the address footprint (bytes)."""
        if self.n == 0:
            return 0
        return int(
            (self.addresses + self.sizes).max() - self.addresses.min()
        )

    def stride_entropy(self, bins: int = 64) -> float:
        """Shannon entropy of the stride histogram (bits); striping
        raises it sharply relative to a sequential stream."""
        if self.n < 3:
            return 0.0
        jumps = self.addresses[1:] - (self.addresses[:-1] + self.sizes[:-1])
        hist, _ = np.histogram(jumps, bins=bins)
        p = hist / hist.sum()
        p = p[p > 0]
        return float(-(p * np.log2(p)).sum())


def posix_pattern(trace: PosixTrace, label: str = "POSIX") -> AccessPattern:
    """The compute-node-level pattern (Figure 6, bottom panel)."""
    addrs = np.array([r.offset for r in trace], dtype=np.int64)
    sizes = np.array([r.nbytes for r in trace], dtype=np.int64)
    return AccessPattern(label=label, addresses=addrs, sizes=sizes)


def device_pattern(
    trace: PosixTrace | list[PosixTrace],
    fs: FileSystemModel,
    label: str | None = None,
) -> AccessPattern:
    """The sub-FS device-level pattern (Figure 6, top panel).

    Runs the trace(s) through the FS translation only (no timing) and
    collects the resulting command LBAs in issue order.  A list of
    traces models the ION view, where several compute nodes' streams
    interleave at the device (round-robin at request granularity).
    """
    traces = [trace] if isinstance(trace, PosixTrace) else list(trace)
    sizes_map: dict[int, int] = {}
    for t in traces:
        for fid, size in t.file_sizes().items():
            sizes_map[fid] = max(sizes_map.get(fid, 0), size)
    fs.format(sizes_map)
    addrs: list[int] = []
    sizes: list[int] = []
    idx = [0] * len(traces)
    remaining = sum(len(t) for t in traces)
    while remaining:
        for ti, t in enumerate(traces):
            if idx[ti] >= len(t):
                continue
            req = t[idx[ti]]
            idx[ti] += 1
            remaining -= 1
            group = fs.translate(req, client=t.client)
            for cmd in group.commands:
                if cmd.kind == "data":
                    addrs.append(cmd.lba)
                    sizes.append(cmd.nbytes)
    return AccessPattern(
        label=label or f"sub-{fs.name}",
        addresses=np.asarray(addrs, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
    )


def pattern_report(patterns: list[AccessPattern]) -> str:
    """Figure-6-style textual comparison of access patterns."""
    lines = [
        f"{'pattern':<14} {'accesses':>9} {'seq%':>7} {'|stride| MB':>12} "
        f"{'entropy(b)':>11} {'span MB':>9}"
    ]
    for p in patterns:
        lines.append(
            f"{p.label:<14} {p.n:>9d} {p.sequential_fraction*100:>6.1f}% "
            f"{p.mean_abs_stride/1e6:>12.2f} {p.stride_entropy():>11.2f} "
            f"{p.address_span/1e6:>9.1f}"
        )
    return "\n".join(lines)
