"""Synthetic OoC workload generator.

The evaluation traces come from the real eigensolver in
:mod:`repro.ooc` (see :func:`repro.ooc.driver.capture_trace`), but the
benchmark harness also needs a fast, deterministic generator with the
same I/O signature so every figure regenerates in seconds.  Section 2.1
defines that signature: per LOBPCG iteration, the Hamiltonian ``H`` is
streamed panel-by-panel in large sequential reads (read-intensive, no
short-term reuse), interleaved with small writes of the iterate /
checkpoint state.
"""

from __future__ import annotations

import numpy as np

from ..ssd.request import PosixRequest
from .posix import PosixTrace

__all__ = [
    "ooc_eigensolver_trace",
    "checkpoint_stream_trace",
    "random_mix_trace",
]

MiB = 1024 * 1024


def ooc_eigensolver_trace(
    panels: int = 24,
    panel_bytes: int = 8 * MiB,
    iterations: int = 2,
    psi_bytes: int = 512 * 1024,
    checkpoint_every: int = 0,
    think_ns_per_panel: int = 0,
    client: int = 0,
    file_id: int = 0,
    offset: int = 0,
) -> PosixTrace:
    """Trace of an OoC LOBPCG run (H panel sweeps + iterate writes).

    ``offset`` shifts the client's partition inside the shared H file,
    matching how each compute node owns a row-panel slice.  If
    ``checkpoint_every`` > 0, every that-many iterations append a Psi
    checkpoint write of ``psi_bytes`` to file ``file_id + 1``.
    """
    if panels < 1 or iterations < 1:
        raise ValueError("panels and iterations must be positive")
    trace = PosixTrace(client=client, label=f"ooc-lobpcg-c{client}")
    t = 0
    for it in range(iterations):
        for p in range(panels):
            trace.append(
                PosixRequest(
                    op="read",
                    file_id=file_id,
                    offset=offset + p * panel_bytes,
                    nbytes=panel_bytes,
                    t_issue_ns=t,
                    tag=f"H[{it}:{p}]",
                )
            )
            t += think_ns_per_panel
        if checkpoint_every and (it + 1) % checkpoint_every == 0:
            trace.append(
                PosixRequest(
                    op="write",
                    file_id=file_id + 1,
                    offset=(it // checkpoint_every) * psi_bytes,
                    nbytes=psi_bytes,
                    t_issue_ns=t,
                    tag=f"psi[{it}]",
                )
            )
    return trace


def checkpoint_stream_trace(
    panels: int = 24,
    panel_bytes: int = 8 * MiB,
    iterations: int = 4,
    think_ns_per_panel: int = 0,
    client: int = 0,
    file_id: int = 0,
    offset: int = 0,
) -> PosixTrace:
    """Write-heavy checkpoint stream (defensive I/O, Section 2.1's dual).

    Each iteration writes the full application state — ``panels`` panels
    of ``panel_bytes`` — into a **double-buffered** checkpoint file:
    even iterations fill buffer A, odd iterations buffer B, so the same
    logical blocks are overwritten every other iteration.  That
    overwrite churn is what separates wear-leveling policies at exhibit
    scale: garbage collection must relocate still-live cold blocks while
    the hot buffer region cycles, so write amplification and wear
    spread diverge between ``none``/``dynamic``/``static`` in a way the
    read-dominated eigensolver sweep never exercises.

    Deterministic (no RNG): the trace is a pure function of its
    arguments, like :func:`ooc_eigensolver_trace`.
    """
    if panels < 1 or iterations < 1:
        raise ValueError("panels and iterations must be positive")
    trace = PosixTrace(client=client, label=f"ckpt-stream-c{client}")
    buffer_bytes = panels * panel_bytes
    t = 0
    for it in range(iterations):
        buf = it % 2  # double-buffer: A, B, A, B, ...
        for p in range(panels):
            trace.append(
                PosixRequest(
                    op="write",
                    file_id=file_id,
                    offset=offset + buf * buffer_bytes + p * panel_bytes,
                    nbytes=panel_bytes,
                    t_issue_ns=t,
                    tag=f"ckpt[{it}:{p}]",
                )
            )
            t += think_ns_per_panel
    return trace


def random_mix_trace(
    n_requests: int = 256,
    file_bytes: int = 256 * MiB,
    read_fraction: float = 0.8,
    min_bytes: int = 4096,
    max_bytes: int = 1 * MiB,
    seed: int = 99,
    client: int = 0,
    file_id: int = 0,
) -> PosixTrace:
    """A random read/write mix for stress and property testing."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction outside [0, 1]")
    rng = np.random.default_rng(seed)
    trace = PosixTrace(client=client, label=f"random-mix-{seed}")
    for _i in range(n_requests):
        nbytes = int(rng.integers(min_bytes, max_bytes + 1))
        nbytes = max(min_bytes, (nbytes // 4096) * 4096)
        offset = int(rng.integers(0, max(1, file_bytes - nbytes)))
        offset = (offset // 4096) * 4096
        op = "read" if rng.random() < read_fraction else "write"
        trace.append(PosixRequest(op, file_id, offset, nbytes))
    return trace
