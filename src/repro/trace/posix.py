"""POSIX-level trace container (Section 4.2's first trace level).

The paper captured POSIX traces "directly under the application but
prior to reaching GPFS" on every compute node, then replayed them
through real file systems to obtain device-level block traces.  Our
:class:`PosixTrace` is that first-level artifact: an ordered list of
:class:`~repro.ssd.request.PosixRequest` with save/load and summary
statistics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..ssd.request import PosixRequest

__all__ = ["PosixTrace"]


@dataclass
class PosixTrace:
    """An ordered POSIX request trace from one client."""

    requests: list[PosixRequest] = field(default_factory=list)
    client: int = 0
    label: str = ""

    def append(self, req: PosixRequest) -> None:
        self.requests.append(req)

    def extend(self, reqs: Iterable[PosixRequest]) -> None:
        self.requests.extend(reqs)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[PosixRequest]:
        return iter(self.requests)

    def __getitem__(self, i):
        return self.requests[i]

    # -- statistics ------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.requests)

    @property
    def read_bytes(self) -> int:
        return sum(r.nbytes for r in self.requests if r.op == "read")

    @property
    def write_bytes(self) -> int:
        return sum(r.nbytes for r in self.requests if r.op == "write")

    @property
    def read_fraction(self) -> float:
        t = self.total_bytes
        return self.read_bytes / t if t else 0.0

    def file_sizes(self) -> dict[int, int]:
        """Minimum file sizes implied by the trace extents."""
        sizes: dict[int, int] = {}
        for r in self.requests:
            sizes[r.file_id] = max(sizes.get(r.file_id, 0), r.end)
        return sizes

    def sequentiality(self) -> float:
        """Fraction of requests that continue the previous extent of
        the same file — the property GPFS striping destroys (Fig. 6)."""
        if len(self.requests) < 2:
            return 1.0
        last_end: dict[int, int] = {}
        seq = 0
        for r in self.requests:
            if last_end.get(r.file_id) == r.offset:
                seq += 1
            last_end[r.file_id] = r.end
        return seq / (len(self.requests) - 1)

    # -- persistence -------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines."""
        p = Path(path)
        with p.open("w") as fh:
            fh.write(
                json.dumps({"client": self.client, "label": self.label}) + "\n"
            )
            for r in self.requests:
                fh.write(
                    json.dumps(
                        [r.op, r.file_id, r.offset, r.nbytes, r.t_issue_ns, r.tag]
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "PosixTrace":
        """Read a trace written by :meth:`save`."""
        p = Path(path)
        with p.open() as fh:
            header = json.loads(fh.readline())
            trace = cls(client=header.get("client", 0), label=header.get("label", ""))
            for line in fh:
                op, fid, off, nb, t, tag = json.loads(line)
                trace.append(PosixRequest(op, fid, off, nb, t, tag))
        return trace
