"""Replay POSIX traces through a storage path (FS -> FTL -> SSD).

This is the pipeline of Section 4.2: the POSIX trace is "replayed
through a real file system in order to capture the device-level block
trace required for input to NANDFlashSim" — here the behavioural FS
model produces the block-level commands and the transaction scheduler
produces the timed device trace.

Multi-client replay (ION configurations) interleaves the clients'
command groups round-robin, sharing the device and the host path, and
reports per-client bandwidth the way the paper reports per-CN numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import cycle, islice

import numpy as np

from ..core.architecture import StoragePath
from ..ssd.controller import ReplayResult
from ..ssd.request import CommandGroup
from .posix import PosixTrace

__all__ = ["replay", "ReplaySummary"]


@dataclass
class ReplaySummary:
    """Replay outcome with the paper's reporting conventions."""

    result: ReplayResult
    per_client_mb: dict[int, float]

    @property
    def bandwidth_mb(self) -> float:
        """Per-client (per-CN) bandwidth, averaged — Figure 7/8's metric."""
        if not self.per_client_mb:
            return 0.0
        return float(np.mean(list(self.per_client_mb.values())))

    @property
    def aggregate_mb(self) -> float:
        return self.result.metrics.bandwidth_mb

    @property
    def metrics(self):
        return self.result.metrics


def _interleave(per_client_groups: list[list[CommandGroup]]) -> list[CommandGroup]:
    """Round-robin merge of the clients' group streams.

    Single-pass ``itertools`` round-robin: exhausted clients drop out of
    the rotation instead of being rescanned every cycle, so the merge is
    O(total groups) even when client stream lengths are skewed.
    """
    merged: list[CommandGroup] = []
    append = merged.append
    num_active = len(per_client_groups)
    nexts = cycle(iter(groups).__next__ for groups in per_client_groups)
    while num_active:
        try:
            for nxt in nexts:
                append(nxt())
        except StopIteration:
            num_active -= 1
            nexts = cycle(islice(nexts, num_active))
    return merged


def replay(
    path: StoragePath,
    traces: list[PosixTrace] | PosixTrace,
    posix_window: int = 2,
) -> ReplaySummary:
    """Format, preload and replay one or more client traces.

    Each trace's ``client`` attribute must be unique; file sizes from
    all clients are merged into one layout (the shared data set).
    """
    if isinstance(traces, PosixTrace):
        traces = [traces]
    if len({t.client for t in traces}) != len(traces):
        raise ValueError("client ids must be unique across traces")

    file_sizes: dict[int, int] = {}
    for t in traces:
        for fid, size in t.file_sizes().items():
            file_sizes[fid] = max(file_sizes.get(fid, 0), size)
    path.format_and_preload(file_sizes)

    per_client_groups = [
        [path.fs.translate(req, client=t.client) for req in t] for t in traces
    ]
    groups = (
        per_client_groups[0]
        if len(per_client_groups) == 1
        else _interleave(per_client_groups)
    )
    result = path.device.run(groups, posix_window=posix_window)
    per_client_mb = {
        c: bw / 1e6 for c, bw in result.metrics.client_bandwidth.items()
    }
    return ReplaySummary(result=result, per_client_mb=per_client_mb)
