"""Device-level block traces (Section 4.2's second capture level).

The paper collected two trace levels: POSIX traces at the compute node
and "device-level block traces completely under GPFS ... Since these
traces are at the device-level, they may be directly fed to
NANDFlashSim."  This module provides that artifact: timestamped
logical-block commands as they left the file system / block layer,
with persistence, pattern statistics, and an open-loop replay that
feeds them straight to a device (no FS in the path — the NANDFlashSim
usage).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, NamedTuple

import numpy as np

from ..ssd.controller import ReplayResult, SSDevice
from ..ssd.request import CommandGroup, DeviceCommand, PosixRequest

__all__ = [
    "BlockRecord",
    "BlockTrace",
    "block_trace_from_result",
    "replay_block_trace",
]


class BlockRecord(NamedTuple):
    """One timestamped device command."""

    t_ns: int
    op: str  # "read" | "write" | "trim"
    lba: int
    nbytes: int
    kind: str  # "data" | "journal" | "metadata"
    client: int


@dataclass
class BlockTrace:
    """An ordered device-level block trace."""

    records: list[BlockRecord] = field(default_factory=list)
    label: str = ""

    def append(self, rec: BlockRecord) -> None:
        self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[BlockRecord]:
        return iter(self.records)

    def __getitem__(self, i):
        return self.records[i]

    # -- statistics ------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    @property
    def data_bytes(self) -> int:
        return sum(r.nbytes for r in self.records if r.kind == "data")

    @property
    def overhead_fraction(self) -> float:
        """Journal + metadata bytes as a fraction of all traffic."""
        total = self.total_bytes
        return 1.0 - self.data_bytes / total if total else 0.0

    @property
    def mean_request_bytes(self) -> float:
        return self.total_bytes / len(self.records) if self.records else 0.0

    def sequentiality(self) -> float:
        """Fraction of data commands that continue the previous one."""
        data = [r for r in self.records if r.kind == "data"]
        if len(data) < 2:
            return 1.0
        seq = sum(
            1 for a, b in zip(data, data[1:]) if b.lba == a.lba + a.nbytes
        )
        return seq / (len(data) - 1)

    def size_histogram(self, bins=(4096, 65536, 131072, 524288, 1 << 20)):
        """Command-size histogram: counts per bucket edge (<= edge)."""
        sizes = np.array([r.nbytes for r in self.records])
        out = {}
        prev = 0
        for edge in bins:
            out[edge] = int(np.sum((sizes > prev) & (sizes <= edge)))
            prev = edge
        out["larger"] = int(np.sum(sizes > prev))
        return out

    # -- persistence -------------------------------------------------------
    def save(self, path: str | Path) -> None:
        p = Path(path)
        with p.open("w") as fh:
            fh.write(json.dumps({"label": self.label}) + "\n")
            for r in self.records:
                fh.write(json.dumps(list(r)) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "BlockTrace":
        p = Path(path)
        with p.open() as fh:
            header = json.loads(fh.readline())
            trace = cls(label=header.get("label", ""))
            for line in fh:
                t, op, lba, nbytes, kind, client = json.loads(line)
                trace.append(BlockRecord(t, op, lba, nbytes, kind, client))
        return trace


def block_trace_from_result(result: ReplayResult, label: str = "") -> BlockTrace:
    """Extract the device-level block trace a replay produced."""
    trace = BlockTrace(label=label)
    for t_ns, op, lba, nbytes, kind, client in result.command_log:
        trace.append(BlockRecord(t_ns, op, lba, nbytes, kind, client))
    return trace


def replay_block_trace(
    device: SSDevice,
    trace: BlockTrace,
    preload_bytes: int | None = None,
    time_scale: float = 1.0,
) -> ReplayResult:
    """Feed a raw block trace to a device (the NANDFlashSim usage).

    Commands are issued open-loop at their recorded timestamps (scaled
    by ``time_scale``); there is no file system or window in the path.
    """
    if preload_bytes:
        device.preload(preload_bytes)
    groups = []
    for rec in trace.records:
        if rec.op == "trim":
            cmd = DeviceCommand("trim", rec.lba, rec.nbytes, kind=rec.kind)
        else:
            cmd = DeviceCommand(rec.op, rec.lba, rec.nbytes, kind=rec.kind)
        posix = PosixRequest(
            op=cmd.op if cmd.op in ("read", "write") else "read",
            file_id=0,
            offset=rec.lba,
            nbytes=rec.nbytes,
            t_issue_ns=int(rec.t_ns * time_scale),
        )
        groups.append(CommandGroup(posix=posix, commands=[cmd], client=rec.client))
    # open loop: a huge window disables application-level flow control
    return device.run(groups, posix_window=max(1, len(groups)))
