"""Reuse-distance analysis (Section 1's anti-caching evidence).

"[S]ome scientific workloads work on huge datasets and never access
[data] twice, whereas others access data multiple times but with such
great spans of time between the accesses (i.e., very high reuse
distances) that the likelihood that it stayed in cache is extremely
small."

Reuse distance here is the classic stack distance: the number of
distinct bytes touched between two accesses to the same block.  A
cache of size C can only hit accesses whose reuse distance is < C, so
the distance distribution *is* the hit-rate curve for any LRU cache —
the quantitative form of the paper's argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .posix import PosixTrace

__all__ = ["ReuseProfile", "reuse_profile", "lru_hit_rate"]


@dataclass
class ReuseProfile:
    """Block-granular reuse distances of a trace."""

    block_bytes: int
    #: reuse distance in bytes for every reused access (inf excluded)
    distances: np.ndarray
    #: accesses to never-before-seen blocks (cold / streaming)
    cold_accesses: int
    total_accesses: int

    @property
    def reuse_fraction(self) -> float:
        """Fraction of accesses that touch previously-seen data."""
        return len(self.distances) / self.total_accesses if self.total_accesses else 0.0

    @property
    def median_distance_bytes(self) -> float:
        if len(self.distances) == 0:
            return float("inf")
        return float(np.median(self.distances))

    def hit_rate_at(self, cache_bytes: int) -> float:
        """LRU hit rate a cache of the given size would achieve."""
        if self.total_accesses == 0:
            return 0.0
        hits = int(np.sum(self.distances < cache_bytes))
        return hits / self.total_accesses


def reuse_profile(trace: PosixTrace, block_bytes: int = 1 << 20) -> ReuseProfile:
    """Stack-distance profile of a POSIX trace at block granularity."""
    if block_bytes < 1:
        raise ValueError("block_bytes must be positive")
    # LRU stack as an ordered list of block keys; distance = number of
    # distinct blocks above the reused key
    stack: list[tuple[int, int]] = []
    position: dict[tuple[int, int], int] = {}
    distances: list[int] = []
    cold = 0
    total = 0
    for req in trace:
        first = req.offset // block_bytes
        last = (req.end - 1) // block_bytes
        for b in range(first, last + 1):
            key = (req.file_id, b)
            total += 1
            idx = position.get(key)
            if idx is None:
                cold += 1
            else:
                depth = len(stack) - 1 - idx
                distances.append(depth * block_bytes)
                stack.pop(idx)
                for k in stack[idx:]:
                    position[k] -= 1
            position[key] = len(stack)
            stack.append(key)
    return ReuseProfile(
        block_bytes=block_bytes,
        distances=np.asarray(distances, dtype=np.int64),
        cold_accesses=cold,
        total_accesses=total,
    )


def lru_hit_rate(trace: PosixTrace, cache_bytes: int, block_bytes: int = 1 << 20) -> float:
    """Convenience: the LRU hit rate implied by the reuse profile."""
    return reuse_profile(trace, block_bytes).hit_rate_at(cache_bytes)
