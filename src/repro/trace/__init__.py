"""Tracing: POSIX traces, synthetic workloads, FS replay, analysis."""

from .analysis import AccessPattern, device_pattern, pattern_report, posix_pattern
from .block import BlockRecord, BlockTrace, block_trace_from_result, replay_block_trace
from .posix import PosixTrace
from .reuse import ReuseProfile, lru_hit_rate, reuse_profile
from .replay import ReplaySummary, replay
from .synth import ooc_eigensolver_trace, random_mix_trace

__all__ = [
    "PosixTrace",
    "ReuseProfile",
    "reuse_profile",
    "lru_hit_rate",
    "BlockTrace",
    "BlockRecord",
    "block_trace_from_result",
    "replay_block_trace",
    "ooc_eigensolver_trace",
    "random_mix_trace",
    "replay",
    "ReplaySummary",
    "AccessPattern",
    "posix_pattern",
    "device_pattern",
    "pattern_report",
]
