"""DOoC: the distributed out-of-core data storage layer and scheduler.

Section 2.1 describes DOoC (the paper's refs [35, 36]) as two parts:

1. a **distributed data storage layer** that lets filters reach data on
   any node, "supports basic prefetching, automatic memory management,
   and OoC operations using simplified semantics ... large
   disk-located arrays are immutable once written, removing any need
   for complicated coherency mechanisms", and
2. a **hierarchical data-aware scheduler**, "cognizant of
   data-dependencies", that reorders tasks to maximize parallelism.

This module is a working middleware with those semantics.  Data pools
hold immutable chunks; a node's memory pool has finite capacity with
LRU eviction (safe because chunks are immutable); reads of non-resident
chunks go to the backing pool and are recorded as POSIX-level I/O into
a trace (the Section 4.2 capture point).  Section 3.1's extension —
migration between pools and between a pool and node memory — is the
``migrate`` operation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..ssd.request import PosixRequest
from ..trace.posix import PosixTrace

__all__ = [
    "Chunk",
    "DataPool",
    "MemoryPool",
    "DOoCStore",
    "Task",
    "DataAwareScheduler",
    "ImmutabilityError",
]


class ImmutabilityError(Exception):
    """Attempt to overwrite an already-written immutable chunk."""


@dataclass(frozen=True)
class Chunk:
    """One immutable chunk of a distributed array."""

    array: str
    index: int
    nbytes: int
    file_id: int
    offset: int

    @property
    def key(self) -> tuple[str, int]:
        return (self.array, self.index)


class DataPool:
    """A backing data pool (the NVM/disk tier of a node or ION).

    Chunks are write-once; reads and writes are appended to the pool's
    POSIX trace with a virtual-clock issue time supplied by the caller.
    """

    def __init__(self, name: str, client: int = 0):
        self.name = name
        self.client = client
        self.trace = PosixTrace(client=client, label=f"pool-{name}")
        self._payload: dict[tuple[str, int], Any] = {}
        self._written: set[tuple[str, int]] = set()

    def write(self, chunk: Chunk, payload: Any, t_issue_ns: int = 0) -> None:
        """Write-once store of a chunk's payload."""
        if chunk.key in self._written:
            raise ImmutabilityError(f"chunk {chunk.key} already written")
        self._written.add(chunk.key)
        self._payload[chunk.key] = payload
        self.trace.append(
            PosixRequest(
                op="write",
                file_id=chunk.file_id,
                offset=chunk.offset,
                nbytes=chunk.nbytes,
                t_issue_ns=t_issue_ns,
                tag=f"{chunk.array}[{chunk.index}]",
            )
        )

    def read(self, chunk: Chunk, t_issue_ns: int = 0) -> Any:
        """Read a chunk's payload, recording the POSIX access."""
        if chunk.key not in self._written:
            raise KeyError(f"chunk {chunk.key} never written to pool {self.name}")
        self.trace.append(
            PosixRequest(
                op="read",
                file_id=chunk.file_id,
                offset=chunk.offset,
                nbytes=chunk.nbytes,
                t_issue_ns=t_issue_ns,
                tag=f"{chunk.array}[{chunk.index}]",
            )
        )
        return self._payload[chunk.key]

    def holds(self, chunk: Chunk) -> bool:
        return chunk.key in self._written


class MemoryPool:
    """A node's finite memory pool with LRU eviction.

    Because DOoC arrays are immutable, eviction is a pure drop — no
    write-back, no coherency traffic.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._lru: OrderedDict[tuple[str, int], tuple[Chunk, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, chunk: Chunk) -> Optional[Any]:
        entry = self._lru.get(chunk.key)
        if entry is None:
            self.misses += 1
            return None
        self._lru.move_to_end(chunk.key)
        self.hits += 1
        return entry[1]

    def put(self, chunk: Chunk, payload: Any) -> None:
        if chunk.nbytes > self.capacity_bytes:
            return  # larger than memory: stream-through, never resident
        while self.used_bytes + chunk.nbytes > self.capacity_bytes and self._lru:
            _key, (old, _payload) = self._lru.popitem(last=False)
            self.used_bytes -= old.nbytes
            self.evictions += 1
        self._lru[chunk.key] = (chunk, payload)
        self.used_bytes += chunk.nbytes

    def drop(self, chunk: Chunk) -> None:
        entry = self._lru.pop(chunk.key, None)
        if entry is not None:
            self.used_bytes -= entry[0].nbytes

    @property
    def resident(self) -> int:
        return len(self._lru)


class DOoCStore:
    """Node-level facade: memory pool over a backing data pool.

    ``read`` consults memory first; misses stream from the backing pool
    (recording I/O) and optionally cache.  ``prefetch`` warms chunks
    ahead of use — the "basic prefetching" DOoC provides.  A virtual
    clock (nanoseconds) orders the recorded I/O; advance it with
    ``tick`` as compute proceeds.
    """

    def __init__(
        self,
        pool: DataPool,
        memory_bytes: int = 1 << 30,
        cache_reads: bool = True,
    ):
        self.pool = pool
        self.memory = MemoryPool(memory_bytes)
        self.cache_reads = cache_reads
        self.clock_ns = 0

    def tick(self, dt_ns: int) -> None:
        """Advance the virtual compute clock."""
        if dt_ns < 0:
            raise ValueError("negative tick")
        self.clock_ns += dt_ns

    def write(self, chunk: Chunk, payload: Any) -> None:
        self.pool.write(chunk, payload, t_issue_ns=self.clock_ns)

    def read(self, chunk: Chunk) -> Any:
        payload = self.memory.get(chunk)
        if payload is None:
            payload = self.pool.read(chunk, t_issue_ns=self.clock_ns)
            if self.cache_reads:
                self.memory.put(chunk, payload)
        return payload

    def prefetch(self, chunk: Chunk) -> None:
        """Warm a chunk into the memory pool (no-op if resident)."""
        if self.memory.get(chunk) is None:
            payload = self.pool.read(chunk, t_issue_ns=self.clock_ns)
            self.memory.put(chunk, payload)

    def migrate(self, chunk: Chunk, dest: DataPool) -> None:
        """Pool-to-pool migration (the Section 3.1 DOoC+LAF extension)."""
        payload = self.pool.read(chunk, t_issue_ns=self.clock_ns)
        dest.write(chunk, payload, t_issue_ns=self.clock_ns)


# ----------------------------------------------------------------------
@dataclass
class Task:
    """A schedulable unit with data dependencies.

    ``reads``/``writes`` are chunk keys; ``fn`` runs when the task is
    dispatched.  ``priority`` breaks ties (lower runs earlier).
    """

    name: str
    fn: Callable[[], Any]
    reads: tuple[tuple[str, int], ...] = ()
    writes: tuple[tuple[str, int], ...] = ()
    priority: int = 0
    result: Any = None
    done: bool = False


class DataAwareScheduler:
    """Dependency-aware task scheduler with locality reordering.

    Tasks writing a chunk must run before tasks reading it (dataflow
    order).  Among ready tasks, the scheduler prefers tasks whose read
    set is already resident in the memory pool — the "data-aware"
    reordering of DOoC's hierarchical scheduler.
    """

    def __init__(self, store: Optional[DOoCStore] = None):
        self.store = store
        self.tasks: list[Task] = []
        self.run_order: list[str] = []

    def add(self, task: Task) -> Task:
        self.tasks.append(task)
        return task

    def _producers(self) -> dict[tuple[str, int], Task]:
        out: dict[tuple[str, int], Task] = {}
        for t in self.tasks:
            for key in t.writes:
                if key in out:
                    raise ImmutabilityError(
                        f"chunk {key} written by both {out[key].name} and {t.name}"
                    )
                out[key] = t
        return out

    def run(self) -> list[Any]:
        """Execute every task respecting dataflow order; returns results."""
        producers = self._producers()
        done_keys: set[tuple[str, int]] = set()
        pending = list(self.tasks)
        results = []
        while pending:
            ready = [
                t
                for t in pending
                if all(k not in producers or k in done_keys for k in t.reads)
            ]
            if not ready:
                names = [t.name for t in pending]
                raise RuntimeError(f"dependency cycle among tasks {names}")
            ready.sort(key=lambda t: (-self._locality(t), -t.priority))
            task = ready[0]
            task.result = task.fn()
            task.done = True
            results.append(task.result)
            self.run_order.append(task.name)
            done_keys.update(task.writes)
            pending.remove(task)
        return results

    def _locality(self, task: Task) -> int:
        """Number of the task's inputs already resident in memory."""
        if self.store is None:
            return 0
        resident = 0
        for key in task.reads:
            if key in self.store.memory._lru:
                resident += 1
        return resident
