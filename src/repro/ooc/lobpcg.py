"""Locally optimal block preconditioned conjugate gradient (LOBPCG).

Our own implementation of Knyazev's method (the paper's reference [42])
for the smallest eigenpairs of a symmetric operator, written so the
operator can be *out of core*: the only access to ``A`` is a block
apply ``A @ X`` on a tall-skinny block — exactly the repeated ``H x
Psi`` multiplication Section 2.1 identifies as the time-consuming
kernel (one panel sweep of the stored Hamiltonian per iteration).

The implementation follows the robust basis-truncation variant:
Rayleigh-Ritz over ``span[X, W, P]`` with orthonormalized blocks whose
``A``-images are carried along through every basis transform (so each
iteration costs exactly one operator apply), dropping the ``P`` block
on ill-conditioning.  Validated against ``scipy.sparse.linalg.lobpcg``
and ``eigsh`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
import scipy.linalg as sla

__all__ = ["LobpcgResult", "lobpcg"]

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class LobpcgResult:
    """Converged eigenpairs and iteration history."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    iterations: int
    residual_norms: np.ndarray
    converged: bool
    #: per-iteration residual norms (when requested)
    history: list[np.ndarray] = field(default_factory=list)

    @property
    def n_applies(self) -> int:
        """Operator applications consumed (1 setup + 1 per iteration)."""
        return self.iterations + 1


def _orth_with_image(
    v: np.ndarray, av: Optional[np.ndarray]
) -> tuple[np.ndarray, Optional[np.ndarray], bool]:
    """Orthonormalize ``v`` and apply the same transform to ``A @ v``.

    ``v = q r`` gives ``q = v r^-1`` and therefore ``A q = (A v) r^-1``
    — no extra operator application needed.  Returns ``ok=False`` on
    numerical rank deficiency.
    """
    q, r = np.linalg.qr(v)
    d = np.abs(np.diag(r))
    ok = bool(d.min() > 1e-10 * max(1.0, d.max()))
    if not ok:
        return q, None if av is None else av, False
    aq = None
    if av is not None:
        aq = np.linalg.solve(r.T, av.T).T  # (A v) r^-1
    return q, aq, True


def _rank_revealing_orth(v: np.ndarray, rcond: float = 1e-8) -> np.ndarray:
    """Orthonormal basis of range(v), dropping dependent directions.

    Used for the W block, whose ``A``-image is computed afterwards, so
    no image transform is needed — nearly-converged residual columns
    are simply deflated instead of aborting the iteration.
    """
    # column scaling first: residual norms can span many decades
    norms = np.linalg.norm(v, axis=0)
    keep = norms > 0
    if not np.any(keep):
        return v[:, :0]
    v = v[:, keep] / norms[keep]
    q, s, _vt = np.linalg.svd(v, full_matrices=False)
    rank = int(np.sum(s > rcond * s[0]))
    return q[:, :rank]


def lobpcg(
    apply_a: Operator,
    x0: np.ndarray,
    preconditioner: Optional[Operator] = None,
    tol: float = 1e-6,
    maxiter: int = 200,
    record_history: bool = False,
) -> LobpcgResult:
    """Find the ``k`` smallest eigenpairs, ``k = x0.shape[1]``.

    ``apply_a`` maps an ``(n, m)`` block to ``A @ block``; this is the
    only way the operator is touched, so an out-of-core panel-streaming
    operator (:class:`repro.ooc.spmm.OutOfCoreOperator`) drops in
    directly.  Exactly one operator apply is performed per iteration.
    """
    x = np.array(x0, dtype=np.float64, copy=True)
    if x.ndim != 2 or x.shape[1] < 1:
        raise ValueError("x0 must be (n, k) with k >= 1")
    n, k = x.shape
    if 3 * k >= n:
        raise ValueError("block size too large for the problem dimension")

    x, _, ok = _orth_with_image(x, None)
    if not ok:
        raise ValueError("x0 is numerically rank-deficient")
    ax = apply_a(x)
    gram = x.T @ ax
    gram = 0.5 * (gram + gram.T)
    theta, c = np.linalg.eigh(gram)
    x = x @ c
    ax = ax @ c
    p = ap = None
    history: list[np.ndarray] = []
    resid = np.full(k, np.inf)

    for it in range(1, maxiter + 1):
        r = ax - x * theta
        resid = np.linalg.norm(r, axis=0)
        if record_history:
            history.append(resid.copy())
        scale = np.maximum(np.abs(theta), 1.0)
        if np.all(resid <= tol * scale):
            return LobpcgResult(theta, x, it - 1, resid, True, history)

        w = preconditioner(r) if preconditioner is not None else r
        w = w - x @ (x.T @ w)
        w = _rank_revealing_orth(w)
        if w.shape[1] == 0:
            # every residual direction collapsed into span(X): stagnation
            return LobpcgResult(
                theta, x, it, resid, bool(np.all(resid <= tol * scale)), history
            )
        aw = apply_a(w)

        blocks = [x, w]
        ablocks = [ax, aw]
        if p is not None:
            p1 = p - x @ (x.T @ p) - w @ (w.T @ p)
            ap1 = ap - ax @ (x.T @ p) - aw @ (w.T @ p)
            p_ort, ap_ort, p_ok = _orth_with_image(p1, ap1)
            if p_ok:
                blocks.append(p_ort)
                ablocks.append(ap_ort)
        s = np.hstack(blocks)
        a_s = np.hstack(ablocks)
        gram = s.T @ a_s
        gram = 0.5 * (gram + gram.T)
        overlap = s.T @ s
        overlap = 0.5 * (overlap + overlap.T)
        try:
            theta_all, c_all = sla.eigh(gram, overlap)
        except (np.linalg.LinAlgError, sla.LinAlgError):
            # overlap lost positive definiteness: retry without P
            s = np.hstack(blocks[:2])
            a_s = np.hstack(ablocks[:2])
            gram = s.T @ a_s
            gram = 0.5 * (gram + gram.T)
            theta_all, c_all = np.linalg.eigh(gram)
        theta = theta_all[:k]
        c = c_all[:, :k]

        x = s @ c
        ax = a_s @ c
        # implicit P: the part of the Ritz step outside span(X)
        c_tail = c[k:, :]
        p = s[:, k:] @ c_tail
        ap = a_s[:, k:] @ c_tail

    r = ax - x * theta
    resid = np.linalg.norm(r, axis=0)
    scale = np.maximum(np.abs(theta), 1.0)
    return LobpcgResult(
        theta, x, maxiter, resid, bool(np.all(resid <= tol * scale)), history
    )
