"""Synthetic nuclear-CI-style Hamiltonian generation.

Section 2.1: the configuration-interaction method builds the nuclear
many-body Hamiltonian ``H`` — massive, sparse, symmetric — and feeds it
to a parallel iterative eigensolver (LOBPCG) for the lowest eigenpairs.
We cannot ship MFDn matrices, so this module generates operators with
the same structural signature:

* symmetric, with a dominant diagonal (single-particle energies),
* block-banded sparsity from the many-body basis ordering (interaction
  matrix elements connect "nearby" configurations),
* a few long-range off-diagonal blocks (cross-shell couplings),

plus the row-panel partitioning used to store ``H`` out of core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["ci_hamiltonian", "partition_rows", "PanelSpec", "panel_bytes"]


def ci_hamiltonian(
    n: int,
    band_blocks: int = 4,
    block: int = 64,
    density: float = 0.15,
    long_range: int = 2,
    seed: int = 42,
) -> sp.csr_matrix:
    """A sparse symmetric CI-like Hamiltonian of dimension ``n``.

    ``band_blocks`` dense-ish blocks of size ``block`` border the
    diagonal; ``long_range`` extra block-diagonals sit further out at
    geometrically increasing offsets (cross-shell couplings).  The
    spectrum is shifted so the matrix is indefinite with a handful of
    well-separated low eigenvalues — the regime LOBPCG targets.
    """
    if n < 2 * block:
        raise ValueError("n too small for the requested block size")
    if not 0.0 < density <= 1.0:
        raise ValueError("density outside (0, 1]")
    rng = np.random.default_rng(seed)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    offsets = [b * block for b in range(1, band_blocks + 1)]
    off = band_blocks * block
    for _ in range(long_range):
        off *= 4
        if off < n:
            offsets.append(off)

    for off in offsets:
        m = n - off
        nnz = max(1, int(m * block * density / 4))
        r = rng.integers(0, m, size=nnz)
        c = r + off - rng.integers(0, min(off, block), size=nnz)
        keep = (c >= 0) & (c < n) & (c != r)
        r, c = r[keep], c[keep]
        v = rng.normal(0.0, 1.0 / np.sqrt(off / block + 1), size=len(r))
        rows.append(r)
        cols.append(c)
        vals.append(v)

    r = np.concatenate(rows)
    c = np.concatenate(cols)
    v = np.concatenate(vals)
    upper = sp.coo_matrix((v, (r, c)), shape=(n, n)).tocsr()
    upper.sum_duplicates()
    h = upper + upper.T
    # single-particle energies: increasing diagonal with a low cluster
    diag = np.sort(rng.uniform(0.5, 2.0, size=n)).cumsum()
    diag -= diag[0] + 5.0  # a few well-separated low states
    h = h + sp.diags(diag)
    return h.tocsr()


@dataclass(frozen=True)
class PanelSpec:
    """One row panel of the out-of-core Hamiltonian."""

    index: int
    row_start: int
    row_end: int

    @property
    def rows(self) -> int:
        return self.row_end - self.row_start


def partition_rows(n: int, panels: int) -> list[PanelSpec]:
    """Split ``n`` rows into ``panels`` near-equal row panels."""
    if panels < 1 or panels > n:
        raise ValueError("panels outside [1, n]")
    bounds = np.linspace(0, n, panels + 1, dtype=int)
    return [
        PanelSpec(index=i, row_start=int(bounds[i]), row_end=int(bounds[i + 1]))
        for i in range(panels)
    ]


def panel_bytes(h: sp.csr_matrix, spec: PanelSpec) -> int:
    """Serialized size of one CSR row panel (data + indices + indptr)."""
    sub = h[spec.row_start : spec.row_end]
    return sub.data.nbytes + sub.indices.nbytes + sub.indptr.nbytes
