"""Out-of-core block sparse matrix-times-multivector (H @ Psi).

The computational core of the paper's application (Section 2.1): the
Hamiltonian is preprocessed into row panels stored out of core; each
LOBPCG iteration streams every panel once and multiplies it against
the tall-skinny iterate block Psi.  Panels are fetched through the
DOoC store (recording the POSIX-level I/O that the storage experiments
replay) with a configurable prefetch depth, and the per-panel compute
advances the store's virtual clock so the trace carries realistic
inter-request think time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .dooc import Chunk, DOoCStore
from .hamiltonian import PanelSpec, partition_rows

__all__ = ["PanelizedMatrix", "OutOfCoreOperator"]


def _csr_panel_nbytes(panel: sp.csr_matrix) -> int:
    return panel.data.nbytes + panel.indices.nbytes + panel.indptr.nbytes


@dataclass(frozen=True)
class _StoredPanel:
    spec: PanelSpec
    chunk: Chunk


class PanelizedMatrix:
    """A symmetric sparse matrix stored as row panels in a DOoC pool."""

    ARRAY_NAME = "H"

    def __init__(
        self,
        h: sp.spmatrix,
        store: DOoCStore,
        panels: int,
        file_id: int = 0,
    ):
        h = h.tocsr()
        if h.shape[0] != h.shape[1]:
            raise ValueError("H must be square")
        self.n = h.shape[0]
        self.store = store
        self.panels: list[_StoredPanel] = []
        offset = 0
        for spec in partition_rows(self.n, panels):
            panel = h[spec.row_start : spec.row_end].tocsr()
            nbytes = _csr_panel_nbytes(panel)
            chunk = Chunk(
                array=self.ARRAY_NAME,
                index=spec.index,
                nbytes=nbytes,
                file_id=file_id,
                offset=offset,
            )
            store.write(chunk, panel)
            self.panels.append(_StoredPanel(spec=spec, chunk=chunk))
            offset += nbytes

    @property
    def total_bytes(self) -> int:
        return sum(p.chunk.nbytes for p in self.panels)

    def panel(self, index: int) -> tuple[PanelSpec, sp.csr_matrix]:
        stored = self.panels[index]
        return stored.spec, self.store.read(stored.chunk)


class OutOfCoreOperator:
    """``apply(X) = H @ X`` streaming panels through the DOoC store.

    ``prefetch_depth`` panels are warmed ahead of the multiply —
    DOoC's prefetching, and the source of the POSIX-window pipelining
    the replay engine models.  ``compute_ns_per_mb`` advances the
    virtual clock per panel to model the SpMM compute time between
    reads.
    """

    def __init__(
        self,
        matrix: PanelizedMatrix,
        prefetch_depth: int = 2,
        compute_ns_per_mb: int = 200_000,
    ):
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.matrix = matrix
        self.prefetch_depth = prefetch_depth
        self.compute_ns_per_mb = compute_ns_per_mb
        self.applies = 0
        self.panels_read = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.apply(x)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """One full panel sweep: y = H @ x."""
        m = self.matrix
        if x.shape[0] != m.n:
            raise ValueError(f"dimension mismatch: {x.shape[0]} != {m.n}")
        y = np.empty((m.n, x.shape[1]) if x.ndim == 2 else (m.n,), dtype=np.float64)
        store = m.store
        n_panels = len(m.panels)
        for i in range(n_panels):
            for j in range(i + 1, min(n_panels, i + 1 + self.prefetch_depth)):
                store.prefetch(m.panels[j].chunk)
            spec, panel = m.panel(i)
            y[spec.row_start : spec.row_end] = panel @ x
            self.panels_read += 1
            store.tick(
                int(self.compute_ns_per_mb * m.panels[i].chunk.nbytes / (1 << 20))
            )
        self.applies += 1
        return y
