"""LAF: the linear-algebra-framework directive layer over DOoC.

Section 3.1: "by using a set of directives and routines exposed by
DOoC+LAF, the OoC application is able to provide the framework enough
knowledge about the application's workings to enable DOoC+LAF to
transparently handle global and local scheduling of tasks and data
migration" — OpenMP-style: the scientist declares arrays and access
intents, the framework manages placement and prefetch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import scipy.sparse as sp

from .dooc import DataPool, DOoCStore
from .spmm import OutOfCoreOperator, PanelizedMatrix

__all__ = ["ArrayDirective", "LafContext"]

MiB = 1024 * 1024


@dataclass(frozen=True)
class ArrayDirective:
    """Declared intent for one out-of-core array.

    ``access`` is the dominant pattern ("stream" = sequential panel
    sweeps, "random" = irregular); ``reuse`` hints whether caching can
    help (OoC sweeps have reuse distances too large to cache —
    Section 1's argument against cache-managed NVM).
    """

    name: str
    access: str = "stream"  # "stream" | "random"
    reuse: str = "none"  # "none" | "high"
    prefetch_depth: int = 2

    def __post_init__(self):
        if self.access not in ("stream", "random"):
            raise ValueError(f"unknown access pattern {self.access!r}")
        if self.reuse not in ("none", "high"):
            raise ValueError(f"unknown reuse hint {self.reuse!r}")


class LafContext:
    """Directive-driven construction of out-of-core operators."""

    def __init__(
        self,
        node_memory_bytes: int = 256 * MiB,
        pool: Optional[DataPool] = None,
        client: int = 0,
    ):
        self.pool = pool or DataPool(name=f"nvm-{client}", client=client)
        self.directives: dict[str, ArrayDirective] = {}
        self._node_memory = node_memory_bytes
        self._stores: dict[str, DOoCStore] = {}

    def declare(self, directive: ArrayDirective) -> None:
        """Register an array's access-intent directive."""
        if directive.name in self.directives:
            raise ValueError(f"array {directive.name!r} already declared")
        self.directives[directive.name] = directive

    def store_for(self, name: str) -> DOoCStore:
        """The DOoC store configured per the array's directive.

        Streams with no reuse disable read caching (caching would only
        churn memory — the paper's anti-cache argument); high-reuse
        arrays cache in node memory.
        """
        d = self.directives.get(name)
        if d is None:
            raise KeyError(f"array {name!r} not declared")
        if name not in self._stores:
            self._stores[name] = DOoCStore(
                self.pool,
                memory_bytes=self._node_memory,
                cache_reads=(d.reuse == "high"),
            )
        return self._stores[name]

    def out_of_core_matrix(
        self, name: str, h: sp.spmatrix, panels: int, file_id: int = 0
    ) -> OutOfCoreOperator:
        """Panelize ``h`` into the pool and wrap it as an operator."""
        d = self.directives.get(name)
        if d is None:
            raise KeyError(f"array {name!r} not declared")
        store = self.store_for(name)
        matrix = PanelizedMatrix(h, store, panels=panels, file_id=file_id)
        return OutOfCoreOperator(matrix, prefetch_depth=d.prefetch_depth)
