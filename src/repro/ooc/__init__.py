"""The out-of-core application: Hamiltonian, LOBPCG, SpMM, DOoC, DataCutter."""

from .datacutter import EOS, Dataflow, EndOfStream, Filter, Stream
from .dooc import (
    Chunk,
    DataAwareScheduler,
    DataPool,
    DOoCStore,
    ImmutabilityError,
    MemoryPool,
    Task,
)
from .driver import OocRun, capture_trace, run_ooc_eigensolver
from .hamiltonian import PanelSpec, ci_hamiltonian, panel_bytes, partition_rows
from .laf import ArrayDirective, LafContext
from .lobpcg import LobpcgResult, lobpcg
from .spmm import OutOfCoreOperator, PanelizedMatrix
from .workloads import (
    BfsResult,
    MatmulResult,
    PageRankResult,
    ooc_bfs,
    ooc_matmul,
    ooc_pagerank,
)

__all__ = [
    "ci_hamiltonian",
    "partition_rows",
    "PanelSpec",
    "panel_bytes",
    "lobpcg",
    "LobpcgResult",
    "OutOfCoreOperator",
    "PanelizedMatrix",
    "Chunk",
    "DataPool",
    "MemoryPool",
    "DOoCStore",
    "Task",
    "DataAwareScheduler",
    "ImmutabilityError",
    "ArrayDirective",
    "LafContext",
    "Filter",
    "Stream",
    "Dataflow",
    "EndOfStream",
    "EOS",
    "OocRun",
    "run_ooc_eigensolver",
    "capture_trace",
    "ooc_pagerank",
    "PageRankResult",
    "ooc_bfs",
    "BfsResult",
    "ooc_matmul",
    "MatmulResult",
]
