"""The other out-of-core workload classes the paper cites.

Section 1 motivates OoC acceleration with a family of algorithms
beyond the eigensolver: "out-of-core (OoC) scientific algorithms
[23, 34, 44, 47] such as solvers for large systems of linear
equations" — the references are GPU out-of-core linear systems,
PageRank estimation, external-memory BFS, and Toledo's survey of OoC
numerical linear algebra.  This module implements three of them over
the same DOoC storage layer, each with a *different* I/O signature:

* :func:`ooc_pagerank` — full panel sweeps per iteration (the
  eigensolver's streaming pattern, on a row-stochastic web graph),
* :func:`ooc_bfs` — level-synchronous BFS reading only the adjacency
  panels its frontier touches (sparse, data-dependent access),
* :func:`ooc_matmul` — tiled dense multiply with quadratic tile reuse
  (the one OoC pattern where caching *does* pay, in contrast to the
  paper's no-reuse argument for the solver workloads).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .dooc import Chunk, DOoCStore
from .spmm import OutOfCoreOperator, PanelizedMatrix

__all__ = [
    "PageRankResult",
    "ooc_pagerank",
    "BfsResult",
    "ooc_bfs",
    "MatmulResult",
    "ooc_matmul",
]


# ----------------------------------------------------------------------
# PageRank (ref. [34])
# ----------------------------------------------------------------------
@dataclass
class PageRankResult:
    ranks: np.ndarray
    iterations: int
    converged: bool
    panels_read: int


def ooc_pagerank(
    adjacency: sp.spmatrix,
    store: DOoCStore,
    panels: int = 8,
    damping: float = 0.85,
    tol: float = 1e-8,
    maxiter: int = 100,
) -> PageRankResult:
    """Power-iteration PageRank with the transition matrix out of core.

    The column-stochastic transition matrix is panelized into the DOoC
    pool once; every iteration streams all panels (the same
    read-intensive, no-reuse signature as the eigensolver).
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping outside (0, 1)")
    a = sp.csr_matrix(adjacency, dtype=np.float64)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("adjacency must be square")
    out_deg = np.asarray(a.sum(axis=1)).ravel()
    dangling = out_deg == 0
    inv = np.zeros(n)
    inv[~dangling] = 1.0 / out_deg[~dangling]
    # T = (D^-1 A)^T, column-stochastic; stored row-panelized
    t = (sp.diags(inv) @ a).T.tocsr()
    matrix = PanelizedMatrix(t, store, panels=min(panels, n), file_id=10)
    op = OutOfCoreOperator(matrix, prefetch_depth=2)

    r = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for it in range(1, maxiter + 1):
        spread = damping * op(r[:, None])[:, 0]
        spread += damping * r[dangling].sum() / n  # dangling mass
        r_new = spread + teleport
        delta = np.abs(r_new - r).sum()
        r = r_new
        if delta < tol:
            return PageRankResult(r, it, True, op.panels_read)
    return PageRankResult(r, maxiter, False, op.panels_read)


# ----------------------------------------------------------------------
# External-memory BFS (ref. [44])
# ----------------------------------------------------------------------
@dataclass
class BfsResult:
    distances: np.ndarray
    levels: int
    panels_read: int
    panels_skipped: int


def ooc_bfs(
    adjacency: sp.spmatrix,
    store: DOoCStore,
    source: int,
    panels: int = 8,
) -> BfsResult:
    """Level-synchronous BFS over an out-of-core adjacency matrix.

    Unlike the solver sweeps, each level reads *only* the row panels
    containing frontier vertices — the Mehlhorn-Meyer external-memory
    regime where I/O is data-dependent and sub-linear per level.
    """
    a = sp.csr_matrix(adjacency)
    n = a.shape[0]
    if not 0 <= source < n:
        raise ValueError("source out of range")
    matrix = PanelizedMatrix(a, store, panels=min(panels, n), file_id=11)
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source])
    level = 0
    read = skipped = 0
    while len(frontier):
        next_mask = np.zeros(n, dtype=bool)
        for stored in matrix.panels:
            spec = stored.spec
            in_panel = frontier[
                (frontier >= spec.row_start) & (frontier < spec.row_end)
            ]
            if len(in_panel) == 0:
                skipped += 1
                continue
            panel = store.read(stored.chunk)
            read += 1
            local = panel[in_panel - spec.row_start]
            next_mask[np.unique(local.indices)] = True
        next_mask &= dist < 0
        frontier = np.flatnonzero(next_mask)
        level += 1
        dist[frontier] = level
    return BfsResult(dist, level - 1 if level else 0, read, skipped)


# ----------------------------------------------------------------------
# Tiled out-of-core dense multiply (refs. [23], [47])
# ----------------------------------------------------------------------
@dataclass
class MatmulResult:
    c: np.ndarray
    tiles_read: int
    tile_reads_per_operand: float


def ooc_matmul(
    a: np.ndarray,
    b: np.ndarray,
    store: DOoCStore,
    tile: int = 128,
) -> MatmulResult:
    """Blocked C = A @ B with both operands tiled out of core.

    Each operand tile is needed ``n/tile`` times — genuine temporal
    reuse, so the DOoC memory pool's caching actually pays here (the
    counterpoint to the solver workloads' no-reuse pattern).
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("incompatible shapes")
    if tile < 1:
        raise ValueError("tile must be positive")
    m, k = a.shape
    _, n = b.shape

    def tiles_of(x, name, file_id):
        out = {}
        off = 0
        rows = -(-x.shape[0] // tile)
        cols = -(-x.shape[1] // tile)
        for i in range(rows):
            for j in range(cols):
                block = np.ascontiguousarray(
                    x[i * tile : (i + 1) * tile, j * tile : (j + 1) * tile]
                )
                chunk = Chunk(
                    array=name,
                    index=i * cols + j,
                    nbytes=block.nbytes,
                    file_id=file_id,
                    offset=off,
                )
                store.write(chunk, block)
                out[(i, j)] = chunk
                off += block.nbytes
        return out

    ta = tiles_of(a, "A", 20)
    tb = tiles_of(b, "B", 21)
    c = np.zeros((m, n))
    reads = 0
    mi, ki, ni = -(-m // tile), -(-k // tile), -(-n // tile)
    for i in range(mi):
        for j in range(ni):
            acc = c[i * tile : (i + 1) * tile, j * tile : (j + 1) * tile]
            for p in range(ki):
                at = store.read(ta[(i, p)])
                bt = store.read(tb[(p, j)])
                reads += 2
                acc += at @ bt
    per_operand = reads / (mi * ki + ki * ni)
    return MatmulResult(c=c, tiles_read=reads, tile_reads_per_operand=per_operand)
