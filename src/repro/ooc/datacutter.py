"""DataCutter-style filter/stream dataflow middleware.

Section 2.1: "DOoC sits atop DataCutter, a middleware that abstracts
dataflows via the concept of filters and streams.  Filters perform
computations on flows of data, which are represented as streams running
between producers and consumers."

Filters are DES processes (so a dataflow can be co-simulated with the
cluster models); streams are bounded FIFO queues providing back
pressure.  A :class:`Dataflow` wires filters together and runs the
whole graph on a :class:`~repro.sim.Simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..sim import Simulator, Store

__all__ = ["EndOfStream", "Stream", "Filter", "Dataflow"]


class EndOfStream:
    """Sentinel flowing down a stream when its producer finishes."""

    _instance: Optional["EndOfStream"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "<EOS>"


EOS = EndOfStream()


class Stream:
    """A bounded FIFO stream between two filters (with back pressure)."""

    def __init__(self, name: str, capacity: int = 16):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._store: Optional[Store] = None
        self.items_passed = 0

    def bind(self, sim: Simulator) -> None:
        self._store = Store(sim, capacity=self.capacity, name=self.name)

    def put(self, item: Any):
        """(event) Deposit an item; blocks when the stream is full."""
        assert self._store is not None, "stream not bound to a simulator"
        if not isinstance(item, EndOfStream):
            self.items_passed += 1
        return self._store.put(item)

    def get(self):
        """(event) Take the next item in FIFO order."""
        assert self._store is not None, "stream not bound to a simulator"
        return self._store.get()


class Filter:
    """A dataflow filter: override :meth:`logic` as a DES generator.

    ``logic`` receives the simulator and yields events (stream put/get,
    timeouts).  Helper ``work(ns)`` models compute occupancy.
    """

    def __init__(self, name: str):
        self.name = name
        self.inputs: list[Stream] = []
        self.outputs: list[Stream] = []
        self.items_processed = 0

    # wiring -------------------------------------------------------------
    def add_input(self, stream: Stream) -> "Filter":
        self.inputs.append(stream)
        return self

    def add_output(self, stream: Stream) -> "Filter":
        self.outputs.append(stream)
        return self

    # behaviour ------------------------------------------------------------
    def logic(self, sim: Simulator) -> Generator:
        """Default: map each input item through :meth:`transform`."""
        src = self.inputs[0]
        while True:
            item = yield src.get()
            if isinstance(item, EndOfStream):
                break
            out = self.transform(item, sim)
            self.items_processed += 1
            for stream in self.outputs:
                yield stream.put(out)
        for stream in self.outputs:
            yield stream.put(EOS)

    def transform(self, item: Any, sim: Simulator) -> Any:
        """Identity by default; override for map-style filters."""
        return item


@dataclass
class Dataflow:
    """A filter graph runnable on a simulator."""

    filters: list[Filter] = field(default_factory=list)
    streams: list[Stream] = field(default_factory=list)

    def stream(self, name: str, capacity: int = 16) -> Stream:
        s = Stream(name, capacity=capacity)
        self.streams.append(s)
        return s

    def add(self, f: Filter) -> Filter:
        self.filters.append(f)
        return f

    def connect(self, producer: Filter, consumer: Filter, name: str = "",
                capacity: int = 16) -> Stream:
        s = self.stream(name or f"{producer.name}->{consumer.name}", capacity)
        producer.add_output(s)
        consumer.add_input(s)
        return s

    def run(self, sim: Optional[Simulator] = None, until: Optional[int] = None) -> int:
        """Bind streams, start every filter, run to completion."""
        sim = sim or Simulator()
        for s in self.streams:
            s.bind(sim)
        for f in self.filters:
            sim.process(f.logic(sim), name=f.name)
        return sim.run(until=until)
