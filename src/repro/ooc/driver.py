"""End-to-end OoC application driver and trace capture.

Runs the *real* pipeline of Section 2.1 — synthetic CI Hamiltonian,
DOoC-managed out-of-core storage, our LOBPCG — and captures the
POSIX-level I/O trace exactly where the paper instrumented it ("under
the application but prior to reaching GPFS").  The captured trace can
then be replayed against any Table-2 storage configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.posix import PosixTrace
from .hamiltonian import ci_hamiltonian
from .laf import ArrayDirective, LafContext
from .lobpcg import LobpcgResult, lobpcg

__all__ = ["OocRun", "run_ooc_eigensolver", "capture_trace"]

MiB = 1024 * 1024


@dataclass
class OocRun:
    """Everything produced by one out-of-core eigensolver run."""

    result: LobpcgResult
    trace: PosixTrace
    panels: int
    h_bytes: int
    panels_read: int
    memory_hits: int
    memory_misses: int

    @property
    def io_bytes(self) -> int:
        return self.trace.read_bytes


def run_ooc_eigensolver(
    n: int = 4000,
    k: int = 6,
    panels: int = 16,
    node_memory_bytes: int | None = None,
    tol: float = 1e-6,
    maxiter: int = 60,
    seed: int = 42,
    prefetch_depth: int = 2,
) -> OocRun:
    """Solve for the ``k`` lowest states of a CI-style Hamiltonian,
    streaming it out of core through DOoC, and capture the I/O trace.

    ``node_memory_bytes`` defaults to a quarter of the Hamiltonian's
    size, so every LOBPCG iteration re-streams the panels — the paper's
    no-reuse regime where caching cannot help.
    """
    h = ci_hamiltonian(n, seed=seed)
    if node_memory_bytes is None:
        h_size = h.data.nbytes + h.indices.nbytes + h.indptr.nbytes
        node_memory_bytes = max(64 * 1024, h_size // 4)
    laf = LafContext(node_memory_bytes=node_memory_bytes)
    laf.declare(
        ArrayDirective(
            name="H", access="stream", reuse="none", prefetch_depth=prefetch_depth
        )
    )
    op = laf.out_of_core_matrix("H", h, panels=panels)
    diag = np.abs(h.diagonal())
    precond = lambda r: r / np.maximum(diag, 1.0)[:, None]  # noqa: E731

    rng = np.random.default_rng(seed + 1)
    x0 = rng.standard_normal((n, k))
    result = lobpcg(op, x0, preconditioner=precond, tol=tol, maxiter=maxiter)

    store = laf.store_for("H")
    return OocRun(
        result=result,
        trace=laf.pool.trace,
        panels=panels,
        h_bytes=op.matrix.total_bytes,
        panels_read=op.panels_read,
        memory_hits=store.memory.hits,
        memory_misses=store.memory.misses,
    )


def capture_trace(**kwargs) -> PosixTrace:
    """Run the application and return only the POSIX trace.

    The trace's write prefix (panel pre-loading) is kept; the storage
    experiments slice it as needed.
    """
    return run_ooc_eigensolver(**kwargs).trace
