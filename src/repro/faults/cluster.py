"""Cluster-layer fault overlay: link flaps and degraded fabrics.

ION-vs-CNL comparisons in the paper assume a healthy QDR fabric; real
deployments see links retrain (flap) and run derated after lane
failures.  :class:`LinkFaultModel` attaches to a
:class:`~repro.cluster.network.SharedLink` and deterministically
injects:

* **flaps** — with ``link_flap_rate`` per transfer, the link stalls for
  ``link_flap_ns`` (DC-DC retrain) before the payload moves;
* **sustained degradation** — ``link_degraded_factor < 1`` stretches
  every transfer's wire time by ``1/factor`` (half the lanes alive =
  factor 0.5 = twice the wire time).

Decisions hash ``(link name, transfer seq)``, so two DES runs with the
same seed produce identical timings and identical fault logs — the DES
event order is itself deterministic.
"""

from __future__ import annotations

from .plan import FaultEvent, FaultPlan

__all__ = ["LinkFaultModel"]

#: recorded FaultEvents are capped (counters keep exact totals)
EVENT_LOG_CAP = 1_000


class LinkFaultModel:
    """Per-link deterministic flap/degradation oracle."""

    def __init__(self, plan: FaultPlan, name: str) -> None:
        spec = plan.spec
        self.plan = plan
        self.name = name
        self.flap_p = spec.link_flap_rate
        self.flap_ns = spec.link_flap_ns
        self.degraded_factor = spec.link_degraded_factor

        self.faults_injected = 0
        self.flaps = 0
        self.degraded_transfers = 0
        self.penalty_ns = 0
        self.events: list[FaultEvent] = []
        self._events_dropped = 0
        self._seq = 0

    # ------------------------------------------------------------------
    def _record(self, event: FaultEvent) -> None:
        self.faults_injected += 1
        if len(self.events) < EVENT_LOG_CAP:
            self.events.append(event)
        else:
            self._events_dropped += 1

    def transfer_overlay(self, nbytes: int, base_ns: int) -> int:
        """Extra nanoseconds this transfer spends on injected faults.

        Called once per transfer in DES order; the per-link sequence
        number is the deterministic decision site.
        """
        seq = self._seq
        self._seq += 1
        extra = 0
        if self.degraded_factor < 1.0:
            stretch = int(base_ns * (1.0 / self.degraded_factor - 1.0))
            if stretch:
                extra += stretch
                self.degraded_transfers += 1
        if self.plan.occurs(self.flap_p, "link", self.name, "flap", seq):
            extra += self.flap_ns
            self.flaps += 1
            self._record(FaultEvent(
                layer="link", kind="link_flap",
                site=(self.name, seq), penalty_ns=self.flap_ns,
            ))
        if extra:
            self.penalty_ns += extra
        return extra

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe roll-up of this link's injected faults."""
        return {
            "link": self.name,
            "faults_injected": self.faults_injected,
            "flaps": self.flaps,
            "degraded_transfers": self.degraded_transfers,
            "penalty_ns": self.penalty_ns,
            "events": [e.to_dict() for e in self.events],
            "events_dropped": self._events_dropped,
        }
