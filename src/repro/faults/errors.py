"""Typed failure taxonomy for deterministic fault injection.

Every injected failure the resilience layers can raise is a subclass of
:class:`FaultError` carrying a machine-readable ``code`` and the fault
*site* (the device/die/link/cell it struck), so callers at any layer —
controller retry loops, the engine supervisor, the service executor —
can classify failures programmatically instead of string-matching.

The split that matters operationally is transient vs permanent:

* **transient** faults (ECC-correctable read errors, a crashed pool
  worker, a flapped link) are expected to succeed when retried and the
  resilience layers retry them with exponential backoff;
* **permanent** faults (a failed die past its recovery ladder, a cell
  that exhausted its retry budget) surface to the caller as the typed
  error itself.

:func:`is_transient` is the single classification point the retry
machinery consults.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "DeviceFault",
    "TransientMediaFault",
    "DieFailure",
    "LinkFault",
    "LinkFlap",
    "LinkUnreachable",
    "WorkerCrash",
    "CellTimeout",
    "RetriesExhausted",
    "is_transient",
]


class FaultError(Exception):
    """Base of the fault taxonomy; ``code`` is machine-readable."""

    code = "fault"
    #: retrying is expected to succeed (the retry layers consult this)
    transient = False

    def __init__(self, detail: str, site: tuple | None = None) -> None:
        super().__init__(detail)
        self.detail = detail
        self.site = site

    def to_dict(self) -> dict:
        d = {"error": self.code, "detail": self.detail}
        if self.site is not None:
            d["site"] = list(self.site)
        return d


# -- device layer -------------------------------------------------------
class DeviceFault(FaultError):
    """A fault injected below the block interface (die, plane, media)."""

    code = "device_fault"


class TransientMediaFault(DeviceFault):
    """ECC-correctable media error: a read-retry round is expected to
    succeed.  Raised only in strict mode; in normal operation the
    controller absorbs it as a retry latency penalty."""

    code = "transient_media_fault"
    transient = True


class DieFailure(DeviceFault):
    """A die (or plane) is permanently failed; data must be recovered
    from redundancy (controller remap) or the operation fails."""

    code = "die_failure"


# -- cluster layer ------------------------------------------------------
class LinkFault(FaultError):
    """A fault on an interconnect/network link."""

    code = "link_fault"


class LinkFlap(LinkFault):
    """The link dropped and retrained; in-flight transfers stall."""

    code = "link_flap"
    transient = True


class LinkUnreachable(LinkFault):
    """The link cannot deliver: closed, zero payload capacity, or a
    packet exhausted its ARQ retransmission budget (see
    :mod:`repro.netfault`).  Permanent by design — the retry machinery
    must surface it instead of hammering a dead fabric, and the DES
    must fail typed rather than hang on a wire that never drains."""

    code = "link_unreachable"


# -- engine layer -------------------------------------------------------
class WorkerCrash(FaultError):
    """A pool worker process died (or was killed) mid-cell."""

    code = "worker_crash"
    transient = True


class CellTimeout(FaultError):
    """A matrix cell exceeded its wall-clock budget."""

    code = "cell_timeout"
    transient = True


class RetriesExhausted(FaultError):
    """A transient fault kept recurring past the retry budget; the
    original (transient) fault is the ``__cause__``."""

    code = "retries_exhausted"


def is_transient(exc: BaseException) -> bool:
    """True when retrying ``exc`` is expected to succeed.

    Besides the taxonomy's own transient members this covers the
    process-pool and connection failures the stdlib raises when a
    worker or peer disappears mid-operation.
    """
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(exc, FaultError):
        return exc.transient
    return isinstance(exc, (BrokenProcessPool, ConnectionError))
