"""repro.faults — deterministic fault injection + resilience.

The paper's media study (Section 2.3, Table 1) is about devices that
*fail and wear*: NAND endurance limits, read-retry, PCM wear-leveling.
This package makes the simulator — and the engine/service layers built
on it — survive that reality instead of assuming a permanently healthy
happy path:

* :mod:`repro.faults.errors` — the typed :class:`FaultError` taxonomy
  (transient vs permanent) every layer classifies failures with;
* :mod:`repro.faults.plan` — :class:`FaultSpec`/:class:`FaultPlan`,
  the seeded, site-hashed decision oracle whose device rates derive
  from the Table-1 endurance budgets;
* :mod:`repro.faults.device` — die failures + ECC read-retry latency
  overlay behind :class:`~repro.ssd.controller.SSDevice`;
* :mod:`repro.faults.cluster` — link flap / degraded-fabric overlay
  for :class:`~repro.cluster.network.SharedLink`.

The engine layer (`repro.experiments.parallel`) supervises pool workers
and retries crashed/hung cells; the service layer (`repro.service`)
adds per-job timeouts, transient-retry and load shedding.  With no
plan attached (or all rates zero) every layer is bit-identical to the
fault-free path — injection is a pure overlay, golden-guarded by
``tests/faults/``.
"""

from .errors import (
    CellTimeout,
    DeviceFault,
    DieFailure,
    FaultError,
    LinkFault,
    LinkFlap,
    LinkUnreachable,
    RetriesExhausted,
    TransientMediaFault,
    WorkerCrash,
    is_transient,
)
from .plan import (
    ENDURANCE_REFERENCE,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    media_wear_factor,
)
from .device import DeviceFaultModel
from .cluster import LinkFaultModel

__all__ = [
    "FaultError",
    "DeviceFault",
    "TransientMediaFault",
    "DieFailure",
    "LinkFault",
    "LinkFlap",
    "LinkUnreachable",
    "WorkerCrash",
    "CellTimeout",
    "RetriesExhausted",
    "is_transient",
    "ENDURANCE_REFERENCE",
    "media_wear_factor",
    "FaultSpec",
    "FaultPlan",
    "FaultEvent",
    "DeviceFaultModel",
    "LinkFaultModel",
]
