"""Device-layer fault overlay: die failures and ECC read retries.

The model sits *behind* the transaction scheduler: it never perturbs
the resource timelines (which stay bit-identical to the fault-free
schedule), it converts injected faults into controller-visible latency
penalties on the affected command's completion time — exactly how a
real SSD surfaces read-retry and die-recovery: the command simply takes
longer.  The penalized completion then flows through the replay loop's
flow-control windows, so faults slow the whole stream realistically.

Two fault classes, both derived from the Table-1 endurance budgets via
:func:`~repro.faults.plan.media_wear_factor`:

* **transient media faults** — with probability ``read_fault_rate x
  wear_factor`` a read command needs ECC retry rounds; round *i* costs
  ``retry_latency_ns * 2**i`` (the controller re-senses with adjusted
  thresholds, backing off).  A command still failing after the retry
  budget is recovered by remap from redundancy (one more ladder step)
  — or raises :class:`TransientMediaFault` in strict mode.
* **die failures** — with probability ``die_failure_rate x wear_factor``
  a die is failed for the whole run; every command touching it pays the
  full recovery ladder (RAIN-style reconstruct), or strict mode raises
  :class:`DieFailure` on first touch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from .errors import DieFailure, TransientMediaFault
from .plan import FaultEvent, FaultPlan, media_wear_factor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nvm.kinds import NVMKind
    from ..ssd.geometry import Geometry

__all__ = ["DeviceFaultModel", "EVENT_LOG_CAP"]

#: recorded FaultEvents are capped (counters keep exact totals)
EVENT_LOG_CAP = 1_000

#: conditional probability one ECC retry round fails again (real
#: read-retry with shifted reference voltages mostly succeeds)
RETRY_RECURRENCE = 0.25


class DeviceFaultModel:
    """Per-device fault state + deterministic injection oracle."""

    def __init__(self, plan: FaultPlan, kind: "NVMKind", geometry: "Geometry") -> None:
        spec = plan.spec
        self.plan = plan
        self.kind_name = kind.name
        wear = media_wear_factor(kind)
        #: per-command read-retry probability, endurance-scaled
        self.read_fault_p = min(0.75, spec.read_fault_rate * wear)
        die_p = min(0.25, spec.die_failure_rate * wear)
        self.failed_dies = frozenset(
            d for d in range(geometry.dies)
            if plan.occurs(die_p, "device", "die", d)
        )
        self.retry_latency_ns = spec.retry_latency_ns
        self.max_retries = spec.max_retries
        self.strict = spec.strict

        # counters (exact, never capped)
        self.faults_injected = 0
        self.retries = 0  # ECC retry rounds issued
        self.read_faults = 0  # commands that needed read-retry
        self.die_fault_hits = 0  # commands that touched a failed die
        self.remapped = 0  # recoveries past the retry budget
        self.penalty_ns = 0
        self.events: list[FaultEvent] = []
        self._events_dropped = 0
        self._seen_failed: set[int] = set()

    # ------------------------------------------------------------------
    def _record(self, event: FaultEvent) -> None:
        self.faults_injected += 1
        if len(self.events) < EVENT_LOG_CAP:
            self.events.append(event)
        else:
            self._events_dropped += 1

    def _ladder_ns(self, rounds: int) -> int:
        """Total latency of ``rounds`` exponential retry rounds."""
        return self.retry_latency_ns * ((1 << rounds) - 1)

    # ------------------------------------------------------------------
    def on_command(
        self,
        seq: int,
        op: str,
        txns: Sequence,
        done: int,
        decode: Callable[[int], tuple],
    ) -> int:
        """Apply injected faults to one completed command.

        ``seq`` is the device-order command sequence number (the
        deterministic site id), ``txns`` the command's page
        transactions, ``done`` its fault-free completion time;
        returns the (possibly penalized) completion.
        """
        plan = self.plan
        penalty = 0

        # -- permanent die failures -------------------------------------
        if self.failed_dies:
            touched = {decode(int(t[1]))[2] for t in txns}
            hit = touched & self.failed_dies
            if hit:
                if self.strict:
                    die = min(hit)
                    raise DieFailure(
                        f"command {seq} touched failed die {die} "
                        f"({self.kind_name})",
                        site=("device", "die", die, seq),
                    )
                self.die_fault_hits += 1
                # full ladder + remap step per failed die touched
                recover = len(hit) * self._ladder_ns(self.max_retries)
                penalty += recover
                self.retries += len(hit) * self.max_retries
                self.remapped += len(hit)
                for die in sorted(hit - self._seen_failed):
                    self._seen_failed.add(die)
                    self._record(FaultEvent(
                        layer="device", kind="die_failure",
                        site=(die, seq), penalty_ns=recover,
                    ))

        # -- transient read faults (ECC retry-with-backoff) -------------
        if op == "read" and plan.occurs(
            self.read_fault_p, "device", "read", seq
        ):
            rounds = 1
            while rounds < self.max_retries and plan.occurs(
                RETRY_RECURRENCE, "device", "ecc", seq, rounds
            ):
                rounds += 1
            recovered = True
            if rounds >= self.max_retries and plan.occurs(
                RETRY_RECURRENCE, "device", "ecc", seq, rounds
            ):
                # budget exhausted and still failing
                if self.strict:
                    raise TransientMediaFault(
                        f"read {seq} uncorrectable after "
                        f"{self.max_retries} retry rounds",
                        site=("device", "read", seq),
                    )
                rounds += 1  # one remap step recovers it
                self.remapped += 1
                recovered = False
            cost = self._ladder_ns(rounds)
            penalty += cost
            self.read_faults += 1
            self.retries += rounds
            self._record(FaultEvent(
                layer="device", kind="transient_media_fault",
                site=(seq,), penalty_ns=cost, recovered=recovered,
            ))

        if penalty:
            self.penalty_ns += penalty
        return done + penalty

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe roll-up carried on results and engine metrics."""
        return {
            "kind": self.kind_name,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "read_faults": self.read_faults,
            "die_fault_hits": self.die_fault_hits,
            "failed_dies": sorted(self.failed_dies),
            "remapped": self.remapped,
            "penalty_ns": self.penalty_ns,
            "events": [e.to_dict() for e in self.events],
            "events_dropped": self._events_dropped,
        }
