"""Seeded, deterministic fault plans.

A :class:`FaultSpec` is a frozen, JSON-serialisable description of what
to inject — base rates per layer, retry budgets, backoff constants — and
a :class:`FaultPlan` is the decision oracle built from it.  Every
decision the plan makes is a pure function of ``(seed, site)`` where the
*site* names the decision point (``("device", "read", cmd_seq)``,
``("link", name, "flap", transfer_seq)``, ``("engine", label, kind,
attempt)``): the plan hashes the site with BLAKE2b and maps the digest
to a uniform float.  Consequences:

* two runs with the same seed inject **identical** faults at identical
  sites, regardless of worker count, scheduling order or wall-clock —
  the determinism guarantee the chaos tests pin down;
* a plan is trivially picklable (it is just its spec), so pool workers
  reconstruct the same oracle the coordinator holds;
* with every rate at zero — or with no plan attached at all — nothing
  is injected and the simulation is bit-identical to the fault-free
  path (faults are a pure overlay, enforced by golden tests).

Device-layer rates are not free parameters: they are **derived from the
Table-1 endurance budgets** (`repro.nvm.endurance`).  A medium's raw
bit-error likelihood grows as its program/erase budget shrinks, so the
base rates in the spec are expressed *at the SLC reference endurance*
(100k cycles) and scaled by :func:`media_wear_factor` — TLC (3k cycles)
sees ~33x the SLC read-retry rate, PCM (10M cycles) ~0.01x, matching
the paper's Section 2.3 ordering of media fragility.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..nvm.kinds import NVMKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ssd.geometry import Geometry
    from .cluster import LinkFaultModel
    from .device import DeviceFaultModel

__all__ = [
    "ENDURANCE_REFERENCE",
    "AGE_READ_RETRY_COEFF",
    "AGE_DIE_FAILURE_COEFF",
    "media_wear_factor",
    "age_fault_rates",
    "FaultSpec",
    "FaultPlan",
    "FaultEvent",
]

#: SLC's Table-1 endurance; the anchor all device rates are expressed at
ENDURANCE_REFERENCE = 100_000

#: age-coupled rate coefficients, at SLC reference endurance.  Raw
#: bit-error rate of charge-trap media grows superlinearly in consumed
#: program/erase cycles, so the read-retry increment is quadratic in
#: age fraction and whole-die loss (the rarer, catastrophic mode) cubic
#: — both zero at age 0, both strictly monotone in age.
AGE_READ_RETRY_COEFF = 0.01
AGE_DIE_FAILURE_COEFF = 0.001


def media_wear_factor(kind: NVMKind) -> float:
    """Fragility multiplier of a medium relative to SLC.

    Inverse of the endurance budget: SLC 1.0, MLC 10x, TLC ~33x,
    PCM 0.01x — the Section 2.3 ordering (NAND wears, PCM offers
    "10^3 to 10^5 times better endurance").
    """
    return ENDURANCE_REFERENCE / kind.endurance_cycles


def age_fault_rates(age_fraction: float) -> tuple[float, float]:
    """(read-retry, die-failure) rate increments for a device age.

    ``age_fraction`` is the consumed fraction of rated lifetime in
    ``[0, 1)``.  Both increments are expressed at the SLC reference
    endurance — :class:`~repro.faults.device.DeviceFaultModel` scales
    them by :func:`media_wear_factor`, so an aged TLC device degrades
    ~33x faster than aged SLC while aged PCM barely moves, matching the
    endurance ordering of Section 2.3.
    """
    if not 0.0 <= age_fraction < 1.0:
        raise ValueError(
            f"age_fraction must be in [0, 1), got {age_fraction!r}"
        )
    return (
        AGE_READ_RETRY_COEFF * age_fraction**2,
        AGE_DIE_FAILURE_COEFF * age_fraction**3,
    )


@dataclass(frozen=True)
class FaultSpec:
    """Frozen description of one fault-injection regime.

    All device rates are per-command base probabilities *at SLC
    reference endurance*; :class:`~repro.faults.device.DeviceFaultModel`
    scales them by :func:`media_wear_factor`.  A spec with every rate at
    zero injects nothing.  Specs are picklable and hashable; their
    :meth:`signature` participates in result-cache keys so faulty
    results never collide with fault-free ones.
    """

    seed: int = 0

    # -- device layer ---------------------------------------------------
    #: P(one command needs ECC read-retry rounds), at SLC endurance
    read_fault_rate: float = 0.0
    #: P(one die is failed for the whole run), at SLC endurance
    die_failure_rate: float = 0.0
    #: latency of one ECC retry round (re-sense + transfer); rounds back
    #: off exponentially: round i costs ``retry_latency_ns * 2**i``
    retry_latency_ns: int = 40_000
    #: retry budget per command before the fault counts as unrecovered
    max_retries: int = 4
    #: strict mode: exhausted/permanent faults raise typed FaultErrors
    #: instead of degrading into a recovery-latency penalty
    strict: bool = False

    # -- cluster layer --------------------------------------------------
    #: P(one transfer hits a link flap)
    link_flap_rate: float = 0.0
    #: retrain stall of one flap
    link_flap_ns: int = 2_000_000
    #: sustained bandwidth derating (1.0 = healthy, 0.5 = half speed)
    link_degraded_factor: float = 1.0

    # -- engine layer ---------------------------------------------------
    #: P(a pool worker is killed on a cell's *first* attempt) — at most
    #: one injected crash per cell, so recovery is always possible
    worker_crash_rate: float = 0.0
    #: P(a pool worker hangs on a cell's first attempt) — exercised
    #: with the engine's cell timeout
    worker_hang_rate: float = 0.0

    def __post_init__(self):
        for name in ("read_fault_rate", "die_failure_rate", "link_flap_rate",
                     "worker_crash_rate", "worker_hang_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v!r}")
        if not 0.0 < self.link_degraded_factor <= 1.0:
            raise ValueError(
                f"link_degraded_factor must be in (0, 1], "
                f"got {self.link_degraded_factor!r}"
            )
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")

    # ------------------------------------------------------------------
    @property
    def injects_device_faults(self) -> bool:
        return self.read_fault_rate > 0 or self.die_failure_rate > 0

    @property
    def injects_link_faults(self) -> bool:
        return self.link_flap_rate > 0 or self.link_degraded_factor < 1.0

    @property
    def injects_worker_faults(self) -> bool:
        return self.worker_crash_rate > 0 or self.worker_hang_rate > 0

    @property
    def enabled(self) -> bool:
        return (
            self.injects_device_faults
            or self.injects_link_faults
            or self.injects_worker_faults
        )

    def signature(self) -> dict:
        """JSON-safe identity for cache keys and wire payloads."""
        return dataclasses.asdict(self)

    def plan(self) -> "FaultPlan":
        return FaultPlan(self)

    def aged(self, age_fraction: float) -> "FaultSpec":
        """This regime on a device at ``age_fraction`` of rated life.

        Adds the :func:`age_fault_rates` increments to the device-layer
        base rates; cluster- and engine-layer rates are untouched (age
        is a property of the medium, not the fabric).  Age 0 returns
        ``self`` unchanged, so un-aged runs keep bit-identity with
        today's fault paths — including the all-zero spec, which still
        injects nothing.
        """
        d_read, d_die = age_fault_rates(age_fraction)
        if d_read == 0.0 and d_die == 0.0:
            return self
        return dataclasses.replace(
            self,
            read_fault_rate=min(1.0, self.read_fault_rate + d_read),
            die_failure_rate=min(1.0, self.die_failure_rate + d_die),
        )

    @classmethod
    def default_chaos(cls, seed: int = 0) -> "FaultSpec":
        """The CLI's ``--faults`` regime: mild, everywhere, recoverable."""
        return cls(
            seed=seed,
            read_fault_rate=0.002,
            die_failure_rate=0.004,
            link_flap_rate=0.01,
            worker_crash_rate=0.1,
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded in deterministic injection order."""

    layer: str  # "device" | "link" | "engine" | "service"
    kind: str  # taxonomy code, e.g. "transient_media_fault"
    site: tuple  # decision site (die id, command seq, cell, ...)
    penalty_ns: int = 0  # latency absorbed recovering from it
    recovered: bool = True

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "kind": self.kind,
            "site": list(self.site),
            "penalty_ns": self.penalty_ns,
            "recovered": self.recovered,
        }


class FaultPlan:
    """Decision oracle over a :class:`FaultSpec`.

    Stateless besides the spec: every query hashes ``(seed, *site)`` so
    outcomes are independent of call order and process boundaries.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._prefix = f"repro.faults:{spec.seed}:".encode()

    # ------------------------------------------------------------------
    def uniform(self, *site) -> float:
        """Deterministic uniform [0, 1) draw for one decision site."""
        h = hashlib.blake2b(
            self._prefix + repr(site).encode(), digest_size=8
        ).digest()
        return int.from_bytes(h, "big") / 2.0**64

    def occurs(self, rate: float, *site) -> bool:
        """Does the event with probability ``rate`` strike this site?"""
        return rate > 0.0 and self.uniform(*site) < rate

    # -- layer model factories ------------------------------------------
    def device_model(self, kind: NVMKind, geometry: "Geometry"
                     ) -> "DeviceFaultModel":
        """The per-device overlay (failed-die set, ECC retry oracle)."""
        from .device import DeviceFaultModel

        return DeviceFaultModel(self, kind, geometry)

    def link_model(self, name: str) -> "LinkFaultModel":
        """The per-link overlay (flaps, sustained degradation)."""
        from .cluster import LinkFaultModel

        return LinkFaultModel(self, name)

    # -- engine-layer decisions -----------------------------------------
    def worker_chaos(self, label: str, kind: str, attempt: int
                     ) -> Optional[str]:
        """Chaos verdict for one (cell, attempt) pool execution.

        Returns ``"crash"`` (worker killed), ``"hang"`` (worker stalls
        past any timeout) or ``None``.  Injection strikes only
        ``attempt == 0`` — a transient worker loss, never a permanent
        one — so a supervised retry always recovers.
        """
        if attempt != 0:
            return None
        if self.occurs(self.spec.worker_crash_rate, "engine", "crash",
                       label, kind):
            return "crash"
        if self.occurs(self.spec.worker_hang_rate, "engine", "hang",
                       label, kind):
            return "hang"
        return None
