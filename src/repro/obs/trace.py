"""Lightweight cross-layer span tracer with two clock domains.

A :class:`Span` is one named, timed interval attributed to a *layer*
(``device``, ``ftl``, ``scheduler``, ``pool``, ``queue``, ...).  Spans
live in one of two clock domains and the two never mix:

* ``sim`` — timestamps are simulated nanoseconds from the DES clock.
  Sim spans are emitted *post hoc* with explicit ``start_ns/end_ns``
  (no clock is read), so the determinism-gated layers stay wall-clock
  free (DET001) and the sim span tree is a pure function of
  ``(config, workload, seed)`` — identical across worker counts.
* ``wall`` — timestamps are wall seconds relative to the tracer's
  epoch, recorded with ``perf_counter``.  Wall spans are the profiling
  view (where does *compute* time go) and are only legal outside the
  sim-domain directories — ``repro.lint`` rule OBS001 enforces this.

Site identity reuses the :mod:`repro.faults.plan` idiom: every span
gets a stable BLAKE2b digest of ``(tracer ctx, parent site, domain,
layer, name, occurrence)``, so the same logical span has the same id
across runs, processes and worker counts.

**Pool boundary**: spans serialize as plain tuples
(:meth:`Tracer.to_tuples`) — no handles, no lambdas, no live state —
so a worker process collects into its own :class:`Tracer` and ships
the tuples back for :meth:`Tracer.ingest` on the coordinator.

**Zero cost when disabled**: the module-global tracer defaults to
``None``; instrumentation sites guard with ``tracer()`` (one global
load and an ``is None`` test) and sit at per-replay / per-cell / per-
job granularity, never inside per-transaction loops.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterable, NamedTuple, Optional

__all__ = [
    "SIM",
    "WALL",
    "Span",
    "Tracer",
    "install",
    "uninstall",
    "tracer",
    "enabled",
    "tracing",
]

SIM = "sim"
WALL = "wall"


class Span(NamedTuple):
    """One traced interval; a plain tuple on the wire."""

    domain: str  # "sim" | "wall"
    layer: str  # attribution bucket ("device", "pool", "queue", ...)
    name: str  # event name within the layer
    site: str  # stable BLAKE2b site id
    parent: str  # parent span's site id ("" for a root)
    start: float  # ns (sim) or seconds since tracer epoch (wall)
    end: float
    attrs: tuple  # sorted ((key, value), ...) pairs, JSON-safe values

    @property
    def duration(self) -> float:
        return self.end - self.start

    def attr(self, key: str, default=None):
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def to_dict(self) -> dict:
        return {
            "domain": self.domain,
            "layer": self.layer,
            "name": self.name,
            "site": self.site,
            "parent": self.parent,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }


def _freeze_attrs(attrs: dict) -> tuple:
    return tuple(sorted(attrs.items()))


def _default_trace_id() -> str:
    # wall-domain identity: unique per process + instant is all we need
    raw = f"{os.getpid()}:{time.time_ns()}".encode()
    return hashlib.blake2b(raw, digest_size=8).hexdigest()


class Tracer:
    """Collects spans; one per run (coordinator) or per worker cell.

    ``ctx`` is a dict of attributes stamped onto every span this tracer
    records (a worker tracer carries ``{"cell": "label|kind"}``), and it
    prefixes every site digest so logically-distinct contexts can never
    collide.  Thread-safe: service executor threads share the installed
    tracer.
    """

    def __init__(self, trace_id: Optional[str] = None, ctx: Optional[dict] = None):
        self.trace_id = trace_id if trace_id is not None else _default_trace_id()
        self.ctx = dict(ctx or {})
        self._ctx_attrs = _freeze_attrs(self.ctx)
        self._site_prefix = repr(self._ctx_attrs).encode()
        self.epoch = time.perf_counter()
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._seq: dict[tuple, int] = {}
        self._wall_stack: list[str] = []

    # -- site identity --------------------------------------------------
    def _site(self, domain: str, layer: str, name: str, parent: str) -> str:
        key = (parent, domain, layer, name)
        n = self._seq.get(key, 0)
        self._seq[key] = n + 1
        raw = self._site_prefix + f"|{parent}|{domain}|{layer}|{name}|{n}".encode()
        return hashlib.blake2b(raw, digest_size=6).hexdigest()

    def _record(self, span: Span) -> None:
        self.spans.append(span)

    # -- sim domain -----------------------------------------------------
    def sim_span(
        self,
        layer: str,
        name: str,
        start_ns: int,
        end_ns: int,
        parent: str = "",
        site_key: Optional[tuple] = None,
        **attrs,
    ) -> str:
        """Record one simulated-time interval; returns its site id.

        Timestamps come from the caller (the DES clock) — this method
        never reads wall time, so sim spans are deterministic.  Parents
        are explicit and must themselves be sim spans: the sim tree
        never dangles off wall spans, whose identity varies run to run.

        ``site_key``, when given, derives the site id from that tuple
        alone instead of the tracer's ctx + occurrence counter — use it
        for spans whose logical identity is already globally unique
        (e.g. ``("replay", label, kind)``), so the same span gets the
        same id no matter which tracer (coordinator or worker) emits it.
        """
        with self._lock:
            if site_key is not None:
                site = hashlib.blake2b(
                    repr(site_key).encode(), digest_size=6
                ).hexdigest()
            else:
                site = self._site(SIM, layer, name, parent)
            self._record(
                Span(SIM, layer, name, site, parent, int(start_ns), int(end_ns),
                     self._ctx_attrs + _freeze_attrs(attrs))
            )
        return site

    # -- wall domain ----------------------------------------------------
    @contextmanager
    def wall_span(self, layer: str, name: str, **attrs):
        """Time a wall-clock interval; nests under the enclosing one.

        Forbidden inside the sim-domain directories (lint rule OBS001):
        wall time there would leak nondeterminism into simulated state.
        """
        t0 = time.perf_counter() - self.epoch
        with self._lock:
            parent = self._wall_stack[-1] if self._wall_stack else ""
            site = self._site(WALL, layer, name, parent)
            self._wall_stack.append(site)
        try:
            yield site
        finally:
            t1 = time.perf_counter() - self.epoch
            with self._lock:
                if site in self._wall_stack:
                    self._wall_stack.remove(site)
                self._record(
                    Span(WALL, layer, name, site, parent, t0, t1,
                         self._ctx_attrs + _freeze_attrs(attrs))
                )

    def wall_event(self, layer: str, name: str, seconds: float, **attrs) -> str:
        """Record an already-measured wall duration (e.g. a worker's
        reported cell seconds) without re-reading the clock twice."""
        t1 = time.perf_counter() - self.epoch
        with self._lock:
            parent = self._wall_stack[-1] if self._wall_stack else ""
            site = self._site(WALL, layer, name, parent)
            self._record(
                Span(WALL, layer, name, site, parent, t1 - float(seconds), t1,
                     self._ctx_attrs + _freeze_attrs(attrs))
            )
        return site

    # -- pool boundary --------------------------------------------------
    def to_tuples(self) -> list[tuple]:
        """Spans as plain tuples — the only thing that crosses the pool."""
        return [tuple(s) for s in self.spans]

    def ingest(self, tuples: Iterable[tuple]) -> None:
        """Adopt spans shipped back from a worker tracer.

        Spans keep their own site ids and parent links (worker site ids
        embed the worker's ctx, so they cannot collide with ours); they
        are appended as-is, and canonical ordering is restored at
        export/report time by sorting — arrival order across workers is
        scheduling-dependent and deliberately not meaningful.
        """
        with self._lock:
            for t in tuples:
                self._record(Span(*t))

    # -- views ----------------------------------------------------------
    def sim_spans(self) -> list[Span]:
        """Sim-domain spans in canonical (deterministic) order."""
        return sorted(
            (s for s in self.spans if s.domain == SIM),
            key=lambda s: (s.attrs, s.start, s.layer, s.name, s.site),
        )

    def wall_spans(self) -> list[Span]:
        return [s for s in self.spans if s.domain == WALL]

    def __len__(self) -> int:
        return len(self.spans)


# -- module-global tracer (the zero-cost-when-disabled switch) -----------
_ACTIVE: Optional[Tracer] = None


def install(t: Tracer) -> Tracer:
    """Make ``t`` the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = t
    return t


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` — callers guard on this."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


@contextmanager
def tracing(t: Optional[Tracer] = None):
    """Scoped install/uninstall; yields the tracer."""
    t = t if t is not None else Tracer()
    prev = _ACTIVE
    install(t)
    try:
        yield t
    finally:
        if prev is None:
            uninstall()
        else:
            install(prev)
