"""repro.obs — unified cross-layer observability.

One substrate for every layer's telemetry, replacing the previous
scatter (service-local counters, ad-hoc ``summary()`` dicts, three
divergent percentile implementations, no tracing at all):

* **spans** (:mod:`repro.obs.trace`) — a lightweight tracer with two
  clock domains: simulated nanoseconds inside the determinism-gated
  layers (no wall clock is ever read there; spans are emitted post hoc
  with explicit DES timestamps) and wall seconds in the experiment /
  service layers.  Spans serialize as plain tuples across the
  ``MatrixEngine`` pool boundary and propagate through service jobs
  via ``JobSpec.trace_id``.
* **registry** (:mod:`repro.obs.registry`) — counters, gauges and
  histograms keyed like Prometheus series; absorbs the service
  counters, ``ResultCache.stats()``, ``MatrixEngine.summary()`` and
  batch-backend provenance into one export surface.
* **exporters** (:mod:`repro.obs.export`) — JSON-lines traces
  (``--trace``), the Prometheus text endpoint served on the service's
  status port, and a per-cell/per-job CSV stats recorder.
* **report** (:mod:`repro.obs.report`) — ``python -m repro obs
  report`` renders a trace into per-layer time-breakdown tables for
  both clock domains.

Everything is **zero-cost when disabled**: no tracer is installed by
default, instrumentation sites guard on :func:`tracer` (a global load
plus an ``is None`` test) and sit at per-replay / per-cell / per-job
granularity — never inside per-transaction loops — so golden
bit-identity and the perf ratchet are unaffected.
"""

from .export import CsvStatsRecorder, prometheus_text, read_jsonl, write_jsonl
from .hist import DEFAULT_WINDOW, LatencyRecorder, percentile
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .report import render_report, sim_breakdown, wall_breakdown
from .trace import (
    SIM,
    WALL,
    Span,
    Tracer,
    enabled,
    install,
    tracer,
    tracing,
    uninstall,
)

__all__ = [
    "SIM",
    "WALL",
    "Span",
    "Tracer",
    "install",
    "uninstall",
    "tracer",
    "enabled",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LatencyRecorder",
    "percentile",
    "DEFAULT_WINDOW",
    "CsvStatsRecorder",
    "prometheus_text",
    "read_jsonl",
    "write_jsonl",
    "render_report",
    "sim_breakdown",
    "wall_breakdown",
]
