"""Exporters: JSON-lines traces, Prometheus text, per-op CSV stats.

Three ways the same observability data leaves the process:

* :func:`write_jsonl` / :func:`read_jsonl` — the trace format behind
  ``--trace`` and ``python -m repro obs report``: one header object
  (trace id, clock-domain legend) then one object per span.  Sim spans
  are written in canonical order so two runs of the same seed produce
  byte-identical sim sections regardless of worker count.
* :func:`prometheus_text` — the text exposition the service's status
  port serves under ``{"op": "metrics"}``: counters and gauges as
  plain samples, histograms as summary quantiles.
* :class:`CsvStatsRecorder` — a line-buffered per-event CSV writer
  (the per-packet stats-recorder idiom from net-rl's simulator): one
  row per completed cell or job, cheap enough to leave on for whole
  sweeps, trivially loadable into pandas/gnuplot.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import IO, Iterable, Optional, Union

from .registry import Histogram, MetricsRegistry
from .trace import SIM, Span, Tracer

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "CsvStatsRecorder",
]

#: format marker written into every trace header
TRACE_FORMAT = "repro-obs-trace/1"


# -- JSON-lines traces ---------------------------------------------------
def write_jsonl(tracer: Tracer, path: Union[str, os.PathLike]) -> int:
    """Write the tracer's spans as a JSON-lines trace; returns span count.

    Sim spans are emitted first in their canonical deterministic order,
    then wall spans in start order — so diffing two traces of the same
    seed isolates wall-time noise to the tail of the file.
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    spans = tracer.sim_spans() + sorted(
        tracer.wall_spans(), key=lambda s: (s.start, s.end, s.site)
    )
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {
                    "format": TRACE_FORMAT,
                    "trace_id": tracer.trace_id,
                    "spans": len(spans),
                    "domains": {SIM: "ns (simulated)", "wall": "s (since epoch)"},
                }
            )
            + "\n"
        )
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return len(spans)


def read_jsonl(path: Union[str, os.PathLike]) -> tuple[dict, list[Span]]:
    """Load a trace file; returns ``(header, spans)``.

    Tolerates a missing header (treats the first object as a span) and
    skips malformed lines rather than dying mid-report.
    """
    header: dict = {}
    spans: list[Span] = []
    for i, line in enumerate(Path(path).read_text().splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        if not isinstance(obj, dict):
            continue
        if i == 0 and obj.get("format") == TRACE_FORMAT:
            header = obj
            continue
        try:
            spans.append(
                Span(
                    domain=obj["domain"],
                    layer=obj["layer"],
                    name=obj["name"],
                    site=obj.get("site", ""),
                    parent=obj.get("parent", ""),
                    start=obj["start"],
                    end=obj["end"],
                    attrs=tuple(sorted((obj.get("attrs") or {}).items())),
                )
            )
        except KeyError:
            continue
    return header, spans


# -- Prometheus text exposition ------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text-format exposition of every registered instrument.

    Histograms render as summaries (windowed quantiles plus cumulative
    ``_count``/``_sum``), matching what the shared
    :class:`~repro.obs.hist.LatencyRecorder` can answer exactly.
    """
    lines: list[str] = []
    seen_header: set[str] = set()
    for inst in registry.instruments():
        if inst.name not in seen_header:
            seen_header.add(inst.name)
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            kind = "summary" if isinstance(inst, Histogram) else inst.kind
            lines.append(f"# TYPE {inst.name} {kind}")
        if isinstance(inst, Histogram):
            rec = inst.recorder
            for q, label in rec.QUANTILES:
                pairs = inst.labels + (("quantile", label),)
                lines.append(
                    f"{inst.name}{_render_labels(pairs)} {rec.percentile(q)}"
                )
            lines.append(
                f"{inst.name}_count{_render_labels(inst.labels)} {rec.count}"
            )
            lines.append(
                f"{inst.name}_sum{_render_labels(inst.labels)} {rec.total}"
            )
        else:
            lines.append(
                f"{inst.name}{_render_labels(inst.labels)} {inst.value}"
            )
    return "\n".join(lines) + "\n"


# -- CSV stats recorder --------------------------------------------------
class CsvStatsRecorder:
    """Per-event CSV log plus running totals (net-rl recorder idiom).

    One recorder owns one ``stats.csv`` under ``log_dir`` (line-
    buffered, so a crashed run still leaves usable rows).  ``log_dir=
    None`` keeps only the in-memory totals — callers never need to
    guard their ``on_*`` calls.
    """

    FIELDS = (
        "t_wall_s",  # wall seconds since recorder construction epoch
        "event",  # "cell" | "job"
        "label",  # config label or job type
        "kind",  # NVM kind or job detail
        "seconds",  # wall duration of the unit
        "sim_ns",  # simulated makespan (cells; blank for jobs)
        "cached",  # served from cache without computing
        "status",  # ok | failed code
    )

    def __init__(self, log_dir: Optional[Union[str, os.PathLike]]):
        self.log_dir = str(log_dir) if log_dir is not None else None
        self._fh: Optional[IO[str]] = None
        self._writer = None
        self._epoch: Optional[float] = None
        if self.log_dir:
            os.makedirs(self.log_dir, exist_ok=True)
            self._fh = open(os.path.join(self.log_dir, "stats.csv"), "w", 1)
            self._writer = csv.writer(self._fh, lineterminator="\n")
            self._writer.writerow(self.FIELDS)
        # running totals, maintained with or without a log file
        self.cells = 0
        self.cells_cached = 0
        self.cell_seconds = 0.0
        self.jobs = 0
        self.jobs_failed = 0
        self.job_seconds = 0.0

    def _now(self) -> float:
        import time

        if self._epoch is None:
            self._epoch = time.perf_counter()
            return 0.0
        return time.perf_counter() - self._epoch

    def _write(self, row: Iterable) -> None:
        if self._writer is not None:
            self._writer.writerow(list(row))

    def on_cell(
        self,
        label: str,
        kind: str,
        seconds: float,
        sim_ns: Optional[int] = None,
        cached: bool = False,
    ) -> None:
        self.cells += 1
        self.cells_cached += 1 if cached else 0
        self.cell_seconds += seconds
        self._write(
            [
                f"{self._now():.6f}", "cell", label, kind, f"{seconds:.6f}",
                "" if sim_ns is None else int(sim_ns), int(cached), "ok",
            ]
        )

    def on_job(
        self,
        job_type: str,
        detail: str,
        seconds: float,
        status: str = "ok",
    ) -> None:
        self.jobs += 1
        self.jobs_failed += 1 if status != "ok" else 0
        self.job_seconds += seconds
        self._write(
            [
                f"{self._now():.6f}", "job", job_type, detail,
                f"{seconds:.6f}", "", 0, status,
            ]
        )

    def summary(self) -> dict:
        return {
            "cells": self.cells,
            "cells_cached": self.cells_cached,
            "cell_seconds": self.cell_seconds,
            "jobs": self.jobs,
            "jobs_failed": self.jobs_failed,
            "job_seconds": self.job_seconds,
        }

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._writer = None

    def __del__(self):  # snippet-3 idiom: never leak the handle
        self.close()
