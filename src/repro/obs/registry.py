"""Central metrics registry: counters, gauges, histograms, one export.

Before ``repro.obs``, metric state was scattered: the service kept its
own counter object, the engine and cache each rolled ad-hoc
``summary()`` / ``stats()`` dicts, and nothing shared an export
surface.  :class:`MetricsRegistry` is the unification point — every
layer either registers real instruments here or has its snapshot dict
*absorbed* (:meth:`MetricsRegistry.absorb`) into flat gauges — and the
Prometheus text endpoint and the status JSON both render from it.

Instruments are keyed by ``(name, sorted labels)`` like Prometheus
series; re-registering returns the existing instrument, so call sites
don't need to thread instrument handles around.  All mutation is
lock-guarded: service executor threads and the event loop share one
registry.
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional, Union

from .hist import DEFAULT_WINDOW, LatencyRecorder

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelValue = Union[str, int, float, bool]


class Counter:
    """Monotonic count; ``inc`` only ever adds a non-negative amount."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Adopt an externally-maintained monotonic total (absorb path)."""
        if value > self.value:
            self.value = value


class Gauge:
    """Point-in-time value; freely settable."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Sample distribution: cumulative count/sum + windowed percentiles.

    Backed by the shared :class:`~repro.obs.hist.LatencyRecorder` — the
    single percentile implementation the service, engine and report all
    use.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: tuple = (),
        window: int = DEFAULT_WINDOW,
        unit: str = "s",
    ):
        self.name = name
        self.help = help
        self.labels = labels
        self.recorder = LatencyRecorder(window=window, unit=unit)

    def observe(self, value: float) -> None:
        self.recorder.record(value)

    @property
    def value(self) -> float:  # uniform read surface with Counter/Gauge
        return self.recorder.total

    def snapshot(self) -> dict:
        return self.recorder.snapshot()


Instrument = Union[Counter, Gauge, Histogram]


def _label_key(labels: Optional[Mapping[str, LabelValue]]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in (labels or {}).items()))


class MetricsRegistry:
    """Get-or-create instrument store with a canonical snapshot."""

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._instruments: dict[tuple, Instrument] = {}

    # -- registration ---------------------------------------------------
    def _get_or_create(self, cls, name, help, labels, **kwargs) -> Instrument:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, help=help, labels=key[1], **kwargs)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"not {cls.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels=None,
        window: int = DEFAULT_WINDOW,
        unit: str = "s",
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, window=window, unit=unit
        )

    # -- absorbing legacy snapshot dicts --------------------------------
    def absorb(
        self,
        prefix: str,
        snapshot: Mapping,
        labels=None,
        monotonic: frozenset = frozenset(),
        help_text: str = "",
    ) -> None:
        """Flatten a ``summary()``/``stats()``-style dict into metrics.

        Nested dicts recurse with underscore-joined names; numeric
        leaves become gauges (or counters when their flattened name is
        listed in ``monotonic``); booleans become 0/1 gauges;
        non-numeric leaves are skipped.  This is how the engine's
        ``fault_stats``, the cache's ``stats()`` and batch provenance
        reach the Prometheus endpoint without rewriting their owners.
        """
        for key, value in snapshot.items():
            name = f"{prefix}_{key}"
            if isinstance(value, Mapping):
                self.absorb(name, value, labels=labels, monotonic=monotonic,
                            help_text=help_text)
            elif isinstance(value, bool):
                self.gauge(name, help_text, labels).set(1.0 if value else 0.0)
            elif isinstance(value, (int, float)):
                if key in monotonic or name in monotonic:
                    self.counter(name, help_text, labels).set_to(float(value))
                else:
                    self.gauge(name, help_text, labels).set(float(value))
            # strings/None/lists: identity, not telemetry — skipped

    # -- views ----------------------------------------------------------
    def instruments(self) -> list[Instrument]:
        """All instruments, sorted by (name, labels) for stable export."""
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def get(self, name: str, labels=None) -> Optional[Instrument]:
        return self._instruments.get((name, _label_key(labels)))

    def snapshot(self) -> dict:
        """JSON-safe dump: ``name{labels}`` -> value or histogram dict."""
        out: dict[str, object] = {}
        for inst in self.instruments():
            label_str = ",".join(f"{k}={v}" for k, v in inst.labels)
            key = f"{inst.name}{{{label_str}}}" if label_str else inst.name
            out[key] = (
                inst.snapshot() if isinstance(inst, Histogram) else inst.value
            )
        return out

    def __len__(self) -> int:
        return len(self._instruments)
