"""The single percentile / latency-distribution implementation.

Before ``repro.obs`` existed the repo carried three divergent
percentile paths: ``repro.sim.stats.percentile`` (nearest-rank,
``q`` in [0, 100], sorts per call), ``repro.service.metrics
.LatencyRecorder`` (round-rank, ``q`` in [0, 1], re-sorted its whole
window on *every* percentile query — three sorts per snapshot) and the
ad-hoc means scattered through engine summaries.  They now all resolve
here:

* :func:`percentile` — the one nearest-rank definition
  (``ceil(q/100 * n) - 1``, the convention the sim tests pin down);
* :class:`LatencyRecorder` — a bounded sliding window that keeps its
  samples **incrementally sorted** (``bisect.insort`` on record,
  ``bisect_left`` delete on eviction), so a percentile query is O(1)
  indexing and a snapshot no longer pays the old O(n log n) re-sort
  per call.  Recording costs O(log n) search + O(n) memmove over a
  window of ~1k floats — nanoseconds against a job that takes seconds.

Unit-agnostic: ``unit`` only names the snapshot keys (``p50_s`` for
seconds, ``p50_ns`` for simulated nanoseconds), so the service's
wall-clock latencies and a sim-time distribution share one code path.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque

__all__ = ["percentile", "LatencyRecorder", "DEFAULT_WINDOW"]

#: samples kept for percentile estimation (the old LATENCY_WINDOW)
DEFAULT_WINDOW = 1024


def _rank(n: int, q: float) -> int:
    """Nearest-rank index into a sorted sequence of length ``n``.

    ``q`` in [0, 100].  ``ceil(q/100 * n) - 1`` clamped to [0, n-1]:
    p0 is the minimum, p100 the maximum, and every result is a member
    of the sample set (no interpolation).
    """
    return max(0, min(n - 1, int(math.ceil(q / 100.0 * n)) - 1))


def percentile(samples, q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100])."""
    xs = sorted(samples)
    if not xs:
        raise ValueError("empty sample set")
    if not 0 <= q <= 100:
        raise ValueError("q outside [0, 100]")
    return float(xs[_rank(len(xs), q)])


class LatencyRecorder:
    """Sliding window of scalar samples with O(1) percentile queries.

    ``count``/``total`` are monotonic since construction; percentiles
    and ``max`` reflect only the most recent ``window`` samples so they
    track current behaviour without unbounded memory.  The window is
    held twice: a deque in arrival order (for eviction) and a list in
    value order (for rank queries), kept in lockstep.
    """

    def __init__(self, window: int = DEFAULT_WINDOW, unit: str = "s"):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.unit = unit
        self._arrivals: deque[float] = deque()
        self._sorted: list[float] = []
        self.count = 0
        self.total = 0.0

    def __len__(self) -> int:
        return len(self._arrivals)

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if len(self._arrivals) >= self.window:
            oldest = self._arrivals.popleft()
            del self._sorted[bisect_left(self._sorted, oldest)]
        self._arrivals.append(value)
        insort(self._sorted, value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the window (0 when empty).

        ``q`` in [0, 1] — the recorder predates the unified [0, 100]
        convention and the service status schema depends on it.
        """
        if not self._sorted:
            return 0.0
        return self._sorted[_rank(len(self._sorted), q * 100.0)]

    @property
    def maximum(self) -> float:
        return self._sorted[-1] if self._sorted else 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        u = self.unit
        return {
            "count": self.count,
            f"mean_{u}": self.mean,
            f"p50_{u}": self.percentile(0.50),
            f"p90_{u}": self.percentile(0.90),
            f"p99_{u}": self.percentile(0.99),
            f"max_{u}": self.maximum,
        }

    #: (quantile, label) pairs the Prometheus summary export renders
    QUANTILES = ((0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"))
