"""``python -m repro obs`` — render a trace into per-layer breakdowns.

The report answers the two questions an optimization pass starts with:

* **simulated time** — of every simulated nanosecond the replays
  produced, which device layer was responsible (cell activation, flash
  bus, channel bus, the two contention classes, non-overlapped DMA)?
  Attribution comes from the sim-domain span tree, whose children tile
  each replay's makespan, so coverage is a structural property the
  smoke test asserts (>= 95%).
* **wall time** — of every wall second the run burned, which compute
  stage was responsible (FTL planning, the scheduler recurrence, the
  stacked metrics pass, pool supervision, queue wait, cache)?  This is
  the profiling view the lockstep-vectorization roadmap item targets:
  the ``scheduler`` row *is* the per-cell recurrence loop.

Wall rows report **self time** (a span's duration minus its children's)
so nested spans never double-count.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import Optional, Sequence

from .trace import SIM, WALL, Span

__all__ = ["sim_breakdown", "wall_breakdown", "render_report", "main"]


def sim_breakdown(spans: Sequence[Span]) -> dict:
    """Per-layer simulated-time attribution over all replay roots.

    Returns ``{"total_ns", "attributed_ns", "coverage", "layers":
    {layer: ns}, "replays": n}``.  The denominator is the summed
    duration of the sim roots (one per replay); the numerator is the
    summed duration of their child spans, grouped by layer.
    """
    sim = [s for s in spans if s.domain == SIM]
    roots = [s for s in sim if s.parent == ""]
    root_sites = {s.site for s in roots}
    total = sum(s.duration for s in roots)
    layers: dict[str, float] = defaultdict(float)
    attributed = 0.0
    for s in sim:
        if s.parent in root_sites:
            layers[s.layer] += s.duration
            attributed += s.duration
    return {
        "total_ns": int(total),
        "attributed_ns": int(attributed),
        "coverage": attributed / total if total > 0 else 0.0,
        "layers": dict(sorted(layers.items(), key=lambda kv: -kv[1])),
        "replays": len(roots),
    }


def wall_breakdown(spans: Sequence[Span]) -> dict:
    """Per-layer wall self-time; ``{"total_s", "layers": {layer: s}}``."""
    wall = [s for s in spans if s.domain == WALL]
    child_time: dict[str, float] = defaultdict(float)
    for s in wall:
        if s.parent:
            child_time[s.parent] += s.duration
    layers: dict[str, float] = defaultdict(float)
    for s in wall:
        self_time = max(0.0, s.duration - child_time.get(s.site, 0.0))
        layers[s.layer] += self_time
    total = sum(s.duration for s in wall if s.parent == "")
    if total == 0.0:
        total = sum(layers.values())
    return {
        "total_s": total,
        "layers": dict(sorted(layers.items(), key=lambda kv: -kv[1])),
        "spans": len(wall),
    }


def _table(rows: list[tuple[str, str, str]], headers: tuple[str, str, str]) -> str:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(3)
    ]
    fmt = f"  {{:<{widths[0]}}}  {{:>{widths[1]}}}  {{:>{widths[2]}}}"
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*r) for r in rows)
    return "\n".join(lines)


def render_report(header: dict, spans: Sequence[Span]) -> str:
    """The human-readable per-layer time-breakdown report."""
    out: list[str] = []
    trace_id = header.get("trace_id", "?")
    out.append(f"trace {trace_id}: {len(spans)} spans")

    sim = sim_breakdown(spans)
    out.append("")
    out.append(
        f"simulated time ({sim['replays']} replays, "
        f"{sim['total_ns'] / 1e6:.2f} ms simulated)"
    )
    if sim["total_ns"] > 0:
        rows = [
            (layer, f"{ns / 1e6:.3f} ms", f"{ns / sim['total_ns']:6.1%}")
            for layer, ns in sim["layers"].items()
        ]
        out.append(_table(rows, ("layer", "sim time", "share")))
        out.append(
            f"  attributed: {sim['attributed_ns'] / 1e6:.2f} ms "
            f"({sim['coverage']:.1%} of simulated time)"
        )
    else:
        out.append("  (no sim-domain spans in this trace)")

    wall = wall_breakdown(spans)
    out.append("")
    out.append(
        f"wall time ({wall['spans']} spans, {wall['total_s']:.3f} s traced)"
    )
    if wall["layers"]:
        total = wall["total_s"] or 1.0
        rows = [
            (layer, f"{s:9.4f} s", f"{s / total:6.1%}")
            for layer, s in wall["layers"].items()
        ]
        out.append(_table(rows, ("layer", "self time", "share")))
    else:
        out.append("  (no wall-domain spans in this trace)")
    return "\n".join(out)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Inspect repro observability traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report", help="per-layer time breakdown of a --trace JSONL file"
    )
    rep.add_argument("trace", help="path to a trace written by --trace")
    rep.add_argument(
        "--require-coverage",
        type=float,
        default=None,
        metavar="FRAC",
        help="exit 1 unless sim-time attribution coverage >= FRAC (CI gate)",
    )
    args = parser.parse_args(argv)

    from .export import read_jsonl

    try:
        header, spans = read_jsonl(args.trace)
    except OSError as exc:
        print(f"obs report: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print(f"obs report: no spans in {args.trace}", file=sys.stderr)
        return 2
    print(render_report(header, spans))
    if args.require_coverage is not None:
        cov = sim_breakdown(spans)["coverage"]
        if cov < args.require_coverage:
            print(
                f"obs report: sim-time coverage {cov:.1%} below required "
                f"{args.require_coverage:.1%}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
