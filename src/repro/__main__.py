"""Command-line reproduction harness.

Usage::

    python -m repro list                    # available exhibits
    python -m repro figure7                 # regenerate one exhibit
    python -m repro all                     # regenerate everything
    python -m repro headline                # the headline claims
    python -m repro figure7 --scale 0.5     # smaller workload
    python -m repro all -o results/         # write exhibits to a dir

Each exhibit prints the same rows/series the paper plots; ``--out``
additionally writes one text file per exhibit.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .experiments import (
    Workload,
    anticache_experiment,
    compute_headline,
    figure1,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
)

MiB = 1024 * 1024


def _workload(scale: float) -> Workload:
    return Workload(panels=max(2, int(round(12 * scale))), panel_bytes=8 * MiB)


def _exhibits(scale: float):
    w = _workload(scale)
    return {
        "figure1": lambda: figure1().text,
        "table1": lambda: table1().text,
        "table2": lambda: table2().text,
        "figure6": lambda: figure6().text,
        "figure7": lambda: figure7(w).text,
        "figure8": lambda: figure8(w).text,
        "figure9": lambda: figure9(w).text,
        "figure10": lambda: figure10(w).text,
        "headline": lambda: compute_headline(w).render(),
        "anticache": lambda: anticache_experiment().render(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures from the simulation.",
    )
    parser.add_argument(
        "exhibit",
        help="exhibit name, 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0 = 96 MiB/client)",
    )
    parser.add_argument(
        "-o",
        "--out",
        type=Path,
        default=None,
        help="directory to write exhibit text files into",
    )
    args = parser.parse_args(argv)

    exhibits = _exhibits(args.scale)
    if args.exhibit == "list":
        print("\n".join(exhibits))
        return 0
    names = list(exhibits) if args.exhibit == "all" else [args.exhibit]
    unknown = [n for n in names if n not in exhibits]
    if unknown:
        print(f"unknown exhibit(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(exhibits)}", file=sys.stderr)
        return 2

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        t0 = time.time()
        text = exhibits[name]()
        elapsed = time.time() - t0
        print(text)
        print(f"[{name}: {elapsed:.1f}s]\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
