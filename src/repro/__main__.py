"""Command-line reproduction harness.

Usage::

    python -m repro list                    # available exhibits
    python -m repro figure7                 # regenerate one exhibit
    python -m repro all                     # regenerate everything
    python -m repro headline                # the headline claims
    python -m repro figure7 --scale 0.5     # smaller workload
    python -m repro all -o results/         # write exhibits to a dir
    python -m repro all --workers 8         # parallel matrix cells
    python -m repro all --cache-dir ~/.cache/repro   # reuse across runs
    python -m repro figure7 --faults        # deterministic fault injection
    python -m repro serve --port 8077       # simulation-as-a-service
    python -m repro lint                    # determinism/invariant analyzer
    python -m repro flow                    # whole-program dataflow analyzer
    python -m repro table2 --trace t.jsonl  # record an obs trace
    python -m repro obs report t.jsonl      # per-layer time breakdown
    python -m repro lifetime                # aged-device capacity sweep
    python -m repro lifetime --ages 0,0.9 --policy static --prom m.txt
    python -m repro netfault                # lossy-fabric degradation sweep
    python -m repro netfault --loss-rates 0,0.05 --stats-dir stats/
    python -m repro netfault --replay examples/trace_replay.jsonl

Each exhibit prints the same rows/series the paper plots; ``--out``
additionally writes one text file per exhibit.  The matrix exhibits
(figures 7-10, headline) share one :class:`MatrixEngine`: ``--workers``
fans independent (config, kind) cells out over a process pool
(``--workers 0`` auto-detects), and an in-memory result cache dedupes
the cells the figures have in common; ``--cache-dir`` persists it.

``--faults`` overlays the default chaos regime
(:meth:`repro.faults.FaultSpec.default_chaos`) on every matrix cell:
seeded, deterministic device read-retries and die failures (plus pool
worker chaos), recovered automatically and reported in a fault footer.
``--fault-seed`` (or the ``REPRO_FAULT_SEED`` env var) pins the seed so
two runs inject byte-identical faults.

``serve`` starts the long-running JSON-lines TCP service
(:mod:`repro.service`): typed cell/matrix/figure/headline jobs, bounded
admission queue with backpressure, in-flight coalescing, streaming
progress and a ``status`` metrics endpoint.  Talk to it with
:class:`repro.service.ServiceClient` (see
``examples/service_quickstart.py``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from .experiments import (
    MatrixEngine,
    ResultCache,
    Workload,
    anticache_experiment,
    compute_headline,
    figure1,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
)

MiB = 1024 * 1024


def _workload(scale: float, stream: str = "eigensolver") -> Workload:
    return Workload(
        panels=max(2, int(round(12 * scale))),
        panel_bytes=8 * MiB,
        # the checkpoint stream needs several double-buffered rewrites
        # per region before GC churn separates the leveling policies
        iterations=4 if stream == "checkpoint" else 1,
        stream=stream,
    )


def _exhibits(scale: float, engine: MatrixEngine):
    w = _workload(scale)
    return {
        "figure1": lambda: figure1().text,
        "table1": lambda: table1().text,
        "table2": lambda: table2().text,
        "figure6": lambda: figure6().text,
        "figure7": lambda: figure7(w, engine=engine).text,
        "figure8": lambda: figure8(w, engine=engine).text,
        "figure9": lambda: figure9(w, engine=engine).text,
        "figure10": lambda: figure10(w, engine=engine).text,
        "headline": lambda: compute_headline(w, engine=engine).render(),
        "anticache": lambda: anticache_experiment().render(),
    }


def _serve_main(argv: list[str]) -> int:
    """``python -m repro serve``: run the simulation service."""
    import asyncio

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve simulation jobs over a JSON-lines TCP endpoint.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8077, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker processes per job (0 = auto-detect, default 1)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission queue bound; beyond it jobs are rejected (default 64)",
    )
    parser.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="jobs executing simultaneously (default 4)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist matrix-cell results on disk (default: in-memory only)",
    )
    parser.add_argument(
        "--stats-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write per-job/per-cell stats.csv under DIR",
    )
    args = parser.parse_args(argv)

    from .experiments.parallel import detect_workers
    from .service import ServiceServer, SimulationService

    try:
        cache = ResultCache(args.cache_dir)
    except NotADirectoryError as exc:
        parser.error(f"--cache-dir: {exc}")
    stats = None
    if args.stats_dir is not None:
        from .obs import CsvStatsRecorder

        stats = CsvStatsRecorder(args.stats_dir)

    async def _run() -> None:
        service = SimulationService(
            workers_per_job=detect_workers() if args.workers == 0 else args.workers,
            cache=cache,
            queue_limit=args.queue_limit,
            max_concurrency=args.max_concurrency,
            stats=stats,
        )
        server = ServiceServer(service, args.host, args.port)
        host, port = await server.start()
        print(
            f"repro service on {host}:{port} "
            f"(queue={args.queue_limit}, concurrency={args.max_concurrency}, "
            f"workers/job={service.executor.workers_per_job})",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("draining in-flight jobs...", flush=True)
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _lifetime_main(argv: list[str]) -> int:
    """``python -m repro lifetime``: the aged-device capacity sweep."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lifetime",
        description="Sweep config x NVM kind x device age: bandwidth, "
        "p99 latency, write amplification and wear spread on devices "
        "fast-forwarded to a fraction of rated lifetime.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0 = 96 MiB/client)",
    )
    parser.add_argument(
        "--labels",
        default=None,
        help="comma-separated config labels (default: device sweep + ION-GPFS)",
    )
    parser.add_argument(
        "--kinds",
        default=None,
        help="comma-separated NVM kinds (default: SLC,MLC,TLC,PCM)",
    )
    parser.add_argument(
        "--ages",
        default=None,
        help="comma-separated lifetime fractions in [0,1) (default: 0,0.5,0.9)",
    )
    parser.add_argument(
        "--policy",
        choices=("none", "dynamic", "static"),
        default="dynamic",
        help="wear-leveling policy (default dynamic)",
    )
    parser.add_argument(
        "--workload",
        choices=("eigensolver", "checkpoint"),
        default="eigensolver",
        help="request stream: the read-dominated eigensolver sweep "
        "(default) or the write-heavy double-buffered checkpoint stream "
        "that separates wear-leveling policies at exhibit scale",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sweep-cell worker processes (0 = auto-detect, default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist sweep-cell results on disk (default: in-memory only)",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="overlay the default chaos regime under the age-coupled rates",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="fault-injection seed (default: $REPRO_FAULT_SEED or 0); "
        "implies --faults",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="record an observability trace (JSON lines) to PATH",
    )
    parser.add_argument(
        "--prom",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the sweep's metrics in Prometheus text format to PATH",
    )
    parser.add_argument(
        "-o",
        "--out",
        type=Path,
        default=None,
        help="directory to write the exhibit text file into",
    )
    args = parser.parse_args(argv)

    from .experiments.lifetime import (
        LIFETIME_KINDS,
        LIFETIME_LABELS,
        lifetime_exhibit,
    )
    from .lifetime import DEFAULT_AGES, WearPolicy

    labels = (
        tuple(s.strip() for s in args.labels.split(",") if s.strip())
        if args.labels
        else LIFETIME_LABELS
    )
    kinds = (
        tuple(s.strip() for s in args.kinds.split(",") if s.strip())
        if args.kinds
        else LIFETIME_KINDS
    )
    ages = (
        tuple(float(s) for s in args.ages.split(",") if s.strip())
        if args.ages
        else DEFAULT_AGES
    )
    try:
        cache = ResultCache(args.cache_dir)
    except NotADirectoryError as exc:
        parser.error(f"--cache-dir: {exc}")
    base_faults = None
    if args.faults or args.fault_seed is not None:
        from .faults import FaultSpec

        fault_seed = args.fault_seed
        if fault_seed is None:
            fault_seed = int(os.environ.get("REPRO_FAULT_SEED", "0"))
        base_faults = FaultSpec.default_chaos(fault_seed)
    tracer = None
    if args.trace is not None:
        from . import obs

        tracer = obs.install(obs.Tracer())
    engine = MatrixEngine(
        workers=None if args.workers == 0 else args.workers, cache=cache
    )
    workload = _workload(args.scale, stream=args.workload)
    t0 = time.time()
    try:
        report = lifetime_exhibit(
            workload,
            engine=engine,
            labels=labels,
            kinds=kinds,
            ages=ages,
            policy=WearPolicy(kind=args.policy),
            base_faults=base_faults,
        )
    except (KeyError, ValueError) as exc:
        print(f"lifetime sweep: {exc}", file=sys.stderr)
        return 2
    elapsed = time.time() - t0
    print(report.text)
    print(f"[lifetime: {len(report.results)} cells, {elapsed:.1f}s]")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "lifetime.txt").write_text(report.text + "\n")
    if args.prom is not None:
        from .obs.export import prometheus_text
        from .obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        report.publish(registry)
        args.prom.write_text(prometheus_text(registry))
        print(f"[metrics -> {args.prom}]")
    if tracer is not None:
        from . import obs

        n_spans = obs.write_jsonl(tracer, args.trace)
        obs.uninstall()
        print(
            f"[trace: {n_spans} spans -> {args.trace}; "
            f"view with 'python -m repro obs report {args.trace}']"
        )
    return 0


def _netfault_main(argv: list[str]) -> int:
    """``python -m repro netfault``: the lossy-fabric exhibit + replay."""
    parser = argparse.ArgumentParser(
        prog="python -m repro netfault",
        description="Sweep packet-loss rate x config x NVM kind over the "
        "packetized go-back-N fabric and re-plot the CNL-vs-ION gap; or "
        "replay a recorded job trace against the simulation service.",
    )
    parser.add_argument(
        "--loss-rates",
        default="0,0.01,0.05,0.2",
        help="comma-separated per-packet loss rates in [0,1] "
        "(default 0,0.01,0.05,0.2)",
    )
    parser.add_argument(
        "--labels",
        default=None,
        help="comma-separated config labels (default: all Table-2 rows)",
    )
    parser.add_argument(
        "--kinds",
        default=None,
        help="comma-separated NVM kinds (default: SLC,MLC,TLC,PCM)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0 = 96 MiB/client)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="matrix-cell worker processes (0 = auto-detect, default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=("batch", "scalar"),
        default="batch",
        help="healthy-matrix backend (bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist healthy matrix cells on disk",
    )
    parser.add_argument(
        "--net-seed",
        type=int,
        default=0,
        help="per-packet loss-oracle seed (default 0)",
    )
    parser.add_argument(
        "--mtu",
        type=int,
        default=4096,
        help="frame payload size in bytes (default 4096)",
    )
    parser.add_argument(
        "--stats-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write the per-packet net_stats.csv under DIR",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="record an observability trace (JSON lines) to PATH",
    )
    parser.add_argument(
        "--prom",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the sweep's metrics in Prometheus text format to PATH",
    )
    parser.add_argument(
        "-o",
        "--out",
        type=Path,
        default=None,
        help="directory to write the exhibit text file into",
    )
    parser.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="TRACE",
        help="replay a recorded JSONL job trace (jobs with "
        "arrival_offset_s) against an in-process service instead of "
        "sweeping loss rates",
    )
    parser.add_argument(
        "--speed",
        type=float,
        default=1.0,
        help="replay clock multiplier (2 = twice as fast, 0 = all at "
        "once; default 1)",
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        from .netfault.replay import run_replay
        from .service.jobs import JobValidationError

        try:
            report = run_replay(
                args.replay,
                workers=max(1, args.workers),
                speed=args.speed,
                cache_dir=args.cache_dir,
            )
        except (OSError, JobValidationError) as exc:
            print(f"netfault replay: {exc}", file=sys.stderr)
            return 2
        print(report.text())
        return 0 if report.failed == 0 else 1

    from .netfault.exhibit import netfault_exhibit
    from .netfault.stats import NetStatsRecorder

    try:
        loss_rates = tuple(
            float(s) for s in args.loss_rates.split(",") if s.strip()
        )
    except ValueError:
        parser.error(f"--loss-rates: not numbers: {args.loss_rates!r}")
    labels = (
        tuple(s.strip() for s in args.labels.split(",") if s.strip())
        if args.labels
        else None
    )
    kinds = (
        tuple(s.strip() for s in args.kinds.split(",") if s.strip())
        if args.kinds
        else None
    )
    try:
        cache = ResultCache(args.cache_dir)
    except NotADirectoryError as exc:
        parser.error(f"--cache-dir: {exc}")
    tracer = None
    if args.trace is not None:
        from . import obs

        tracer = obs.install(obs.Tracer())
    stats = NetStatsRecorder(args.stats_dir)
    engine = MatrixEngine(
        workers=None if args.workers == 0 else args.workers,
        cache=cache,
        backend=args.backend,
    )
    t0 = time.time()
    try:
        report = netfault_exhibit(
            _workload(args.scale),
            engine=engine,
            loss_rates=loss_rates,
            labels=labels,
            kinds=kinds,
            net_seed=args.net_seed,
            mtu_bytes=args.mtu,
            stats=stats,
        )
    except (KeyError, ValueError) as exc:
        print(f"netfault sweep: {exc}", file=sys.stderr)
        return 2
    elapsed = time.time() - t0
    print(report.text)
    print(
        f"[netfault: {len(report.results)} cells over "
        f"{len(report.loss_rates)} loss rates, {elapsed:.1f}s]"
    )
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "netfault.txt").write_text(report.text + "\n")
    if args.stats_dir is not None:
        s = stats.summary()
        print(
            f"[net stats: {s['packets_sent']} packets "
            f"({s['packets_lost']} lost, {s['retransmits']} retransmits) "
            f"-> {args.stats_dir}/net_stats.csv]"
        )
    stats.close()
    if args.prom is not None:
        from .obs.export import prometheus_text
        from .obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        report.publish(registry)
        args.prom.write_text(prometheus_text(registry))
        print(f"[metrics -> {args.prom}]")
    if tracer is not None:
        from . import obs

        n_spans = obs.write_jsonl(tracer, args.trace)
        obs.uninstall()
        print(
            f"[trace: {n_spans} spans -> {args.trace}; "
            f"view with 'python -m repro obs report {args.trace}']"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "lifetime":
        return _lifetime_main(argv[1:])
    if argv and argv[0] == "netfault":
        return _netfault_main(argv[1:])
    if argv and argv[0] == "lint":
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "flow":
        from .flow.cli import main as flow_main

        return flow_main(argv[1:])
    if argv and argv[0] == "obs":
        from .obs.report import main as obs_main

        return obs_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures from the simulation.",
    )
    parser.add_argument(
        "exhibit",
        help="exhibit name, 'all', 'list', or 'serve'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0 = 96 MiB/client)",
    )
    parser.add_argument(
        "-o",
        "--out",
        type=Path,
        default=None,
        help="directory to write exhibit text files into",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="matrix-cell worker processes (0 = auto-detect, default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=("batch", "scalar"),
        default="batch",
        help="matrix-cell execution backend: the columnar batch kernel "
        "(default, bit-identical to scalar) or the frozen scalar reference",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist matrix-cell results on disk (default: in-memory only)",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="inject the default seeded chaos regime into every matrix cell",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="fault-injection seed (default: $REPRO_FAULT_SEED or 0); "
        "implies --faults",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="record an observability trace (JSON lines) to PATH; "
        "inspect with 'python -m repro obs report PATH'",
    )
    parser.add_argument(
        "--stats-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write a per-cell stats.csv under DIR",
    )
    args = parser.parse_args(argv)

    try:
        cache = ResultCache(args.cache_dir)
    except NotADirectoryError as exc:
        parser.error(f"--cache-dir: {exc}")
    faults = None
    if args.faults or args.fault_seed is not None:
        from .faults import FaultSpec

        fault_seed = args.fault_seed
        if fault_seed is None:
            fault_seed = int(os.environ.get("REPRO_FAULT_SEED", "0"))
        faults = FaultSpec.default_chaos(fault_seed)
    tracer = None
    if args.trace is not None:
        from . import obs

        tracer = obs.install(obs.Tracer())
    stats = None
    if args.stats_dir is not None:
        from .obs import CsvStatsRecorder

        stats = CsvStatsRecorder(args.stats_dir)
    engine = MatrixEngine(
        workers=None if args.workers == 0 else args.workers,
        cache=cache,
        faults=faults,
        backend=args.backend,
        stats=stats,
    )
    exhibits = _exhibits(args.scale, engine)
    if args.exhibit == "list":
        print("\n".join(exhibits))
        print("lifetime  (subcommand: python -m repro lifetime --help)")
        print("netfault  (subcommand: python -m repro netfault --help)")
        return 0
    names = list(exhibits) if args.exhibit == "all" else [args.exhibit]
    unknown = [n for n in names if n not in exhibits]
    if unknown:
        print(f"unknown exhibit(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(exhibits)}", file=sys.stderr)
        return 2

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        t0 = time.time()
        if tracer is not None:
            with tracer.wall_span("cli", name):
                text = exhibits[name]()
        else:
            text = exhibits[name]()
        elapsed = time.time() - t0
        print(text)
        print(f"[{name}: {elapsed:.1f}s]\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n")
    if engine.timings:
        cached = sum(1 for t in engine.timings if t.cached)
        print(
            f"[matrix engine: {len(engine.timings)} cells ({cached} cached), "
            f"{engine.total_seconds:.1f}s cell time, {engine.workers} workers]"
        )
        if engine.batch_stats["batch_cells"]:
            print(
                f"[batch kernel: {engine.batch_stats['batch_cells']} cells "
                f"columnar, {engine.batch_stats['fallback_cells']} scalar "
                f"fallbacks, {engine.batch_stats['batch_seconds']:.1f}s]"
            )
        cstats = engine.cache_stats()
        if cstats is not None and (cstats["hits"] or cstats["misses"]):
            print(
                f"[result cache: {cstats['hits']} hits "
                f"({cstats['memory_hits']} mem / {cstats['disk_hits']} disk), "
                f"{cstats['misses']} misses, {cstats['puts']} puts, "
                f"hit ratio {cstats['hit_ratio']:.0%}]"
            )
    if faults is not None:
        fs = engine.fault_stats
        print(
            f"[fault injection: seed {faults.seed}, "
            f"{fs['faults_injected']} device faults "
            f"({fs['device_retries']} retries), "
            f"{fs['worker_crashes']} worker crashes, "
            f"{fs['cell_timeouts']} cell timeouts, "
            f"{fs['cell_retries']} cells retried — all recovered]"
        )
    if tracer is not None:
        from . import obs

        n_spans = obs.write_jsonl(tracer, args.trace)
        obs.uninstall()
        print(
            f"[trace: {n_spans} spans -> {args.trace}; "
            f"view with 'python -m repro obs report {args.trace}']"
        )
    if stats is not None:
        s = stats.summary()
        stats.close()
        print(
            f"[stats: {s['cells']} cell rows ({s['cells_cached']} cached), "
            f"{s['jobs']} job rows -> {args.stats_dir}/stats.csv]"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
