"""Array-native transaction scheduler for planned (columnar) cells.

The stock :class:`~repro.ssd.scheduler.TransactionScheduler` computes a
vectorized pre-pass per submitted command, runs the sequential
resource-timeline recurrence, and writes 23 log columns per command
into its buffers.  For a planned cell the pre-pass already happened —
once, for the whole matrix, in :func:`repro.batch.plan.stack_plans` —
so this subclass keeps the lane's columns as whole-lane Python lists
(one ``tolist`` per lane instead of nine per command), runs the
*verbatim read recurrence* of the reference ``_schedule_arrays`` over
``lo:hi`` row windows, and assembles the columnar log in one vectorized
pass at :meth:`finish`.

Bit-identity: the recurrence below is a line-for-line copy of the READ
branch of ``TransactionScheduler._schedule_arrays`` (the frozen
reference), operating on the same Python ints over the same resource
state; the planner guarantees every transaction is a read.  Golden
tests assert RunMetrics equality for all 52 Table-2 cells.
"""

from __future__ import annotations

import numpy as np

from ..interconnect.host import HostPath
from ..nvm.bus import BusSpec
from ..nvm.kinds import NVMKind
from ..ssd.geometry import Geometry
from ..ssd.scheduler import KIND_CODES, TransactionScheduler, TxnLog
from .plan import LaneCols, TxnSlice

__all__ = ["ColumnarScheduler"]


class ColumnarScheduler(TransactionScheduler):
    """Scheduler whose per-transaction pre-pass was hoisted to plan time."""

    def __init__(
        self,
        geometry: Geometry,
        bus: BusSpec,
        host: HostPath,
        cols: LaneCols,
        kind: NVMKind | None = None,
    ):
        super().__init__(geometry, bus, host, kind=kind)
        self._cols = cols
        # whole-lane scalar views (one tolist per lane, not per command)
        self._unit_l = cols.unit.tolist()
        self._die_l = cols.die.tolist()
        self._pkg_l = cols.pkg.tolist()
        self._chan_l = cols.chan.tolist()
        self._cell_l = cols.cell_ns.tolist()
        self._fb_l = cols.fb.tolist()
        self._hb_l = cols.hb.tolist()
        self._cmd_l = cols.cmd.tolist()
        n = len(cols.op)
        # per-row interval outputs, in submission order
        self._cs = [0] * n
        self._ce = [0] * n
        self._fs = [0] * n
        self._fe = [0] * n
        self._ss = [0] * n
        self._se = [0] * n
        self._hs = [0] * n
        self._he = [0] * n
        self._out = 0  # rows emitted so far
        # per-command metadata, in submission order
        self._cmd_meta: list[tuple[int, int, int, int, int, int]] = []

    def submit(
        self,
        txns,
        arrival: int,
        req_id: int,
        client: int = 0,
        kind_label: str = "data",
    ) -> int:
        if not isinstance(txns, TxnSlice):
            raise TypeError(
                "ColumnarScheduler replays planned lanes only; "
                "unplanned transactions must use the scalar path"
            )
        if arrival < 0:
            raise ValueError("negative arrival")
        lo, hi = txns.lo, txns.hi
        if hi <= lo:
            return arrival
        self._cmd_meta.append(
            (req_id, client, KIND_CODES.get(kind_label, 0), arrival, lo, hi)
        )

        unit_l = self._unit_l
        die_l = self._die_l
        pkg_l = self._pkg_l
        chan_l = self._chan_l
        cell_l = self._cell_l
        fb_l = self._fb_l
        hb_l = self._hb_l
        cmd_l = self._cmd_l
        chan_free = self.chan_free
        pkg_free = self.pkg_free
        die_free = self.die_free
        plane_free = self.plane_free
        host_free = self.host_free
        cs_l, ce_l = self._cs, self._ce
        fs_l, fe_l = self._fs, self._fe
        ss_l, se_l = self._ss, self._se
        hs_l, he_l = self._hs, self._he
        out = self._out
        completion = arrival

        # the reference READ recurrence, verbatim, over the lane window
        for i in range(lo, hi):
            unit = unit_l[i]
            die_g = die_l[i]
            c_start = arrival
            df = die_free[die_g]
            if df > c_start:
                c_start = df
            pl = plane_free[unit]
            if pl > c_start:
                c_start = pl
            c_end = c_start + cell_l[i]
            die_free[die_g] = c_end
            fb_ns = fb_l[i]
            pkg_g = pkg_l[i]
            pf = pkg_free[pkg_g]
            f_start = pf if pf > c_end else c_end
            f_end = f_start + fb_ns
            pkg_free[pkg_g] = f_end
            channel = chan_l[i]
            cf = chan_free[channel]
            s_start = cf if cf > f_end else f_end
            s_end = s_start + cmd_l[i] + fb_ns
            chan_free[channel] = s_end
            plane_free[unit] = s_end  # register drains with the bus
            h_start = host_free if host_free > s_end else s_end
            h_end = h_start + hb_l[i]
            host_free = h_end
            if h_end > completion:
                completion = h_end
            cs_l[out] = c_start
            ce_l[out] = c_end
            fs_l[out] = f_start
            fe_l[out] = f_end
            ss_l[out] = s_start
            se_l[out] = s_end
            hs_l[out] = h_start
            he_l[out] = h_end
            out += 1

        self.host_free = host_free
        self._out = out
        self._n = out
        return completion

    def finish(self) -> TxnLog:
        """Assemble the columnar log in one vectorized gather."""
        n = self._out
        meta = self._cmd_meta
        c = self._cols
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            from ..ssd.scheduler import LOG_COLUMNS

            return TxnLog({name: empty for name in LOG_COLUMNS})
        m = np.asarray(meta, dtype=np.int64)
        lo = m[:, 4]
        hi = m[:, 5]
        lens = hi - lo
        starts = np.cumsum(lens) - lens
        pos = np.arange(n, dtype=np.int64)
        # plan-order row index of each log row, in submission order
        idx = np.repeat(lo, lens) + (pos - np.repeat(starts, lens))
        rep = lambda col: np.repeat(m[:, col], lens)  # noqa: E731
        ss_arr = np.asarray(self._ss[:n], dtype=np.int64)
        he_arr = np.asarray(self._he[:n], dtype=np.int64)
        se_arr = np.asarray(self._se[:n], dtype=np.int64)
        return TxnLog(
            {
                "req": rep(0),
                "client": rep(1),
                "op": c.op[idx],
                "channel": c.chan[idx],
                "package": c.pkg[idx],
                "die": c.die[idx],
                "plane": c.plane[idx],
                "nbytes": c.nbytes[idx],
                "group": c.group[idx],
                "kind_code": rep(2),
                "flat": c.flat[idx],
                "pib": c.pib[idx],
                "arrival": rep(3),
                "cell_start": np.asarray(self._cs[:n], dtype=np.int64),
                "cell_end": np.asarray(self._ce[:n], dtype=np.int64),
                "fb_start": np.asarray(self._fs[:n], dtype=np.int64),
                "fb_end": np.asarray(self._fe[:n], dtype=np.int64),
                "ch_start": ss_arr,
                "ch_end": se_arr,
                "h_start": np.asarray(self._hs[:n], dtype=np.int64),
                "h_end": he_arr,
                # reads: media completes with the channel transfer and
                # the request with the host transfer (reference branch)
                "media_done": se_arr,
                "done": he_arr,
            }
        )
