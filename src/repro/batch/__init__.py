"""Columnar batch kernel: many Table-2 cells in one numpy pass.

The scalar engine replays every matrix cell through a Python
dispatch/translate/metrics pipeline.  For the pre-staged, read-only OoC
eigensolver workload the per-cell transaction streams are *statically
known* the moment the file system has laid the files out: address
translation is the identity striping installed by
:meth:`repro.ssd.ftl.DeviceFTL.preload`, no command mutates FTL state,
and every per-transaction quantity except the resource-timeline
recurrence is embarrassingly data-parallel.

This package exploits that: it pre-translates every cell's command
stream, stacks all cells into one (cell x txn) int64 columnar block,
evaluates address decode, latency-ladder lookups, bus/link arithmetic
and command-sharing discounts for the whole matrix in a single numpy
sweep, replays each cell's flow control through the *unchanged*
controller loop and scheduler recurrence, and finally computes all
paper metrics with segmented (per-lane) interval algebra in a second
stacked sweep.

The scalar path (``ssd/scheduler.py`` + ``ssd/metrics.py`` +
``experiments/runner.py``) is the frozen bit-exact reference — never
deleted, and golden tests assert :class:`~repro.ssd.metrics.RunMetrics`
equality between the two backends for all 52 Table-2 cells.

Fallback contract: anything the columnar plan cannot express — write or
trim commands, cold (unmapped) reads, fault injection, non-FIFO queue
policies, geometries without plane pairs — raises
:class:`BatchUnsupported` at plan time and the cell runs on the scalar
backend instead, bit-for-bit unchanged.
"""

from .backend import BatchReport, run_cells_batch
from .plan import BatchUnsupported, CellPlan, plan_cell, stack_plans

__all__ = [
    "BatchReport",
    "BatchUnsupported",
    "CellPlan",
    "plan_cell",
    "run_cells_batch",
    "stack_plans",
]
