"""Segmented interval algebra: per-key union measures in one sweep.

The scalar metrics pass (:mod:`repro.ssd.metrics`) merges interval sets
per resource with :mod:`repro.sim.intervals` — a Python loop over
resources per cell.  The batch backend needs the same quantities for
*every* (lane, resource) pair of the stacked matrix at once, so this
module computes them with a single sort + running-maximum sweep over
all rows, keyed by a dense int64 segment id.

Everything stays in int64 (endpoints are exact nanoseconds), so the
per-key totals are bit-exact equals of ``intervals.measure(merge(...))``
— the float conversions happen only at assembly time, mirroring the
scalar code.  Set identities turn every "exclusive measure" the scalar
path computes via ``subtract`` into differences of plain union
measures, valid because each subtrahend family is contained in the
corresponding minuend family (cell/fb/chb intervals of a transaction
lie within its own in-flight window; see the metrics module).

Nested families (cell ⊂ cell∪fb ⊂ cell∪fb∪chb, media ⊂ host∪media)
share one sort: :func:`sorted_filter` sorts the outermost family and
returns the surviving original row ids, and a sorted *subset* of a
sorted sequence is still sorted, so the inner families are boolean
filters fed straight to :func:`measure_sorted`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["union_measure", "distinct_count", "sorted_filter", "measure_sorted"]


def sorted_filter(
    key: np.ndarray, start: np.ndarray, end: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Drop degenerate rows and sort by (key, start).

    Returns ``(ids, k, s, e)`` where ``ids`` are the original row
    indices in sorted order — callers carve nested sub-families out of
    one sort by masking on ``ids``.  Degenerate rows (``end <= start``)
    are dropped, exactly as ``intervals.as_intervals`` does.
    """
    keep = end > start
    if not keep.all():
        ids0 = np.flatnonzero(keep)
        key, start, end = key[ids0], start[ids0], end[ids0]
    else:
        ids0 = np.arange(len(key), dtype=np.int64)
    if len(key) == 0:
        return ids0, key, start, end
    # single composite-key sort: (key, start) packs into one int64 when
    # the spans allow (they always do for nanosecond timelines), halving
    # the sort cost vs a two-pass lexsort.  Ties are (key, start)-equal
    # rows, whose relative order cannot change the union measure.
    s_base = int(start.min())
    span = int(end.max()) - s_base + 1
    if int(key.max()) * span < 2**62:
        order = np.argsort(key * span + (start - s_base))
    else:  # pragma: no cover - astronomic timestamps
        order = np.lexsort((start, key))
    return ids0[order], key[order], start[order], end[order]


def measure_sorted(
    k: np.ndarray, s: np.ndarray, e: np.ndarray, n_keys: int
) -> np.ndarray:
    """Per-key union measure of rows already (key, start)-sorted.

    All rows must satisfy ``e > s`` (use :func:`sorted_filter`).  One
    global running maximum of ends computes every key's merged measure:
    segments are kept from bleeding into each other by lifting each
    segment onto its own disjoint value range (``end + seg * off`` with
    ``off`` wider than the global end spread), which preserves
    within-segment comparisons verbatim.
    """
    out = np.zeros(n_keys, dtype=np.int64)
    n = len(k)
    if n == 0:
        return out
    new = np.empty(n, dtype=bool)
    new[0] = True
    new[1:] = k[1:] != k[:-1]
    seg = np.cumsum(new) - 1
    off = int(e.max()) - int(e.min()) + 1
    n_segs = int(seg[-1]) + 1
    if n_segs * off >= 2**62:  # pragma: no cover - astronomic timestamps
        raise OverflowError("interval span too large for segmented sweep")
    # running max of ends up to-but-excluding each row, segment-local
    cummax = np.maximum.accumulate(e + seg * off) - seg * off
    prev = np.empty(n, dtype=np.int64)
    prev[0] = s[0]
    prev[1:] = cummax[:-1]
    base = np.maximum(prev, s)
    base[new] = s[new]  # first row of a segment counts in full
    added = np.maximum(e - base, 0)
    firsts = np.flatnonzero(new)
    out[k[firsts]] = np.add.reduceat(added, firsts)
    return out


def union_measure(
    key: np.ndarray, start: np.ndarray, end: np.ndarray, n_keys: int
) -> np.ndarray:
    """Per-key measure of the union of [start, end) intervals.

    Returns a dense int64 array of length ``n_keys`` (0 for keys with
    no intervals).  Convenience wrapper over :func:`sorted_filter` +
    :func:`measure_sorted` for standalone families.
    """
    _, k, s, e = sorted_filter(key, start, end)
    return measure_sorted(k, s, e, n_keys)


def distinct_count(key: np.ndarray, val: np.ndarray, n_keys: int) -> np.ndarray:
    """Number of distinct ``val`` values per key (dense int64 output)."""
    out = np.zeros(n_keys, dtype=np.int64)
    if len(key) == 0:
        return out
    order = np.lexsort((val, key))
    k = key[order]
    v = val[order]
    new = np.empty(len(k), dtype=bool)
    new[0] = True
    new[1:] = (k[1:] != k[:-1]) | (v[1:] != v[:-1])
    np.add.at(out, k[new], 1)
    return out
