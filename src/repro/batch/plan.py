"""Plan a matrix cell into columnar transactions (cell x txn layout).

A *plan* is everything about a cell's replay that does not depend on
time: the command stream the file system emits for the workload trace,
the page-level transactions each command translates to under the
pre-staged identity mapping, and every per-transaction quantity without
a cross-transaction dependency (address decode, latency-ladder cell
times, bus/host transfer times, multi-plane grouping and the
command-sharing discount).

``plan_cell`` builds one cell's plan — or raises
:class:`BatchUnsupported` if the cell needs anything the static
translation cannot express (writes, trims, cold reads, fault models,
non-FIFO queueing, geometries without plane pairs).  ``stack_plans``
then concatenates all planned cells into one stacked int64 block and
evaluates the shared arithmetic for the whole matrix in a single numpy
sweep; each plan receives per-cell views (``lanes``) that the columnar
scheduler slices per command at dispatch time.

Two lanes are materialized per cell from the same transaction columns:

* ``main`` — the configured bus/host/command-overhead constants,
* ``peak`` — the unconstrained-interface constants of
  :func:`repro.experiments.runner._unconstrained_media_peak` (infinite
  bus and host, zero command overhead), reusing the plan instead of
  re-translating the identical deterministic stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.architecture import StoragePath
from ..experiments.configs import ExpConfig, config_by_label
from ..interconnect.host import HostPath
from ..nvm.bus import BusSpec
from ..nvm.kinds import NVMKind, kind_by_name
from ..ssd.request import CommandGroup, DeviceCommand, OpCode
from ..trace.replay import _interleave

__all__ = [
    "BatchUnsupported",
    "CellPlan",
    "LaneCols",
    "PlannedCommand",
    "PlannedFTL",
    "TxnSlice",
    "plan_cell",
    "stack_plans",
]


class BatchUnsupported(Exception):
    """The columnar plan cannot express this cell; use the scalar path."""


@dataclass(frozen=True)
class PlannedCommand(DeviceCommand):
    """A device command whose translation was fixed at plan time.

    ``lo:hi`` index the cell's transaction columns; the planned FTL
    returns that slice instead of translating, so the controller's
    dispatch loop runs unchanged.
    """

    lo: int = 0
    hi: int = 0


class TxnSlice:
    """A contiguous row range of a cell's transaction columns."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        self.lo = lo
        self.hi = hi

    def __len__(self) -> int:
        return self.hi - self.lo


class PlannedFTL:
    """Stand-in FTL whose translations were precomputed by the plan.

    Only ever sees :class:`PlannedCommand`s (the plan refused anything
    that could mutate FTL state), so translation is a slice lookup and
    the stats roll-up is identically zero — exactly what the real
    :class:`~repro.ssd.ftl.DeviceFTL` reports for a pure-read replay.
    """

    def __init__(self, n_logical_pages: int, page_bytes: int):
        self.n_logical_pages = n_logical_pages
        self.page_bytes = page_bytes
        self.stats = {
            "gc_runs": 0,
            "gc_moved_pages": 0,
            "host_writes_pages": 0,
            "rmw_reads": 0,
        }

    def preload(self, nbytes: int) -> None:  # pragma: no cover - plan validates
        pass

    def translate(self, cmd: DeviceCommand) -> TxnSlice:
        assert isinstance(cmd, PlannedCommand), "planned FTL needs planned commands"
        return TxnSlice(cmd.lo, cmd.hi)


@dataclass
class LaneCols:
    """Per-row columns one scheduler lane consumes (all int64).

    ``op`` .. ``cell_ns`` are shared between lanes (views of the
    stacked block); ``fb``/``hb``/``cmd`` carry the lane's bus, host
    and command-overhead arithmetic.
    """

    op: np.ndarray
    flat: np.ndarray
    nbytes: np.ndarray
    group: np.ndarray
    pib: np.ndarray
    unit: np.ndarray
    plane: np.ndarray
    chan: np.ndarray
    pkg: np.ndarray
    die: np.ndarray
    cell_ns: np.ndarray
    fb: np.ndarray
    hb: np.ndarray
    cmd: np.ndarray


@dataclass
class CellPlan:
    """One cell's static replay plan plus its stacked-column views."""

    label: str
    kind_name: str
    config: ExpConfig
    kind: NVMKind
    path: StoragePath
    posix_window: int
    groups: list[CommandGroup]  # planned commands, clients interleaved
    n: int
    flat: np.ndarray
    nbytes: np.ndarray
    cmd_ord: np.ndarray  # row -> command ordinal within the cell
    group_ids: np.ndarray
    #: filled by :func:`stack_plans`
    lanes: dict[str, LaneCols] = field(default_factory=dict)


def _pair_planes(
    flat: np.ndarray, cmd_ord: np.ndarray, U: int, P: int
) -> np.ndarray:
    """Vectorized multi-plane pairing, mirroring ``DeviceFTL._group_planes``.

    For ``P == 2`` a pair forms at row *i* exactly when rows *i*, *i+1*
    belong to the same command, target consecutive flats in sibling
    planes of one die at the same page slot, and row *i* is
    plane-aligned.  Pairs can never chain or overlap: a pair start
    needs an even plane unit, and the second member's unit is odd.
    Group-id *values* are assigned in plan order rather than dispatch
    order; only adjacency equality and sign are metric-visible, so the
    schedule and every metric are unchanged (golden-tested).
    """
    n = len(flat)
    group = np.full(n, -1, dtype=np.int64)
    if P == 1 or n < 2:
        return group
    if P != 2:
        raise BatchUnsupported(f"plane pairing for planes_per_die={P}")
    a, b = flat[:-1], flat[1:]
    pair = (
        (cmd_ord[1:] == cmd_ord[:-1])
        & (b == a + 1)
        & ((b % U) // P == (a % U) // P)
        & (b // U == a // U)
        & ((a % U) % P == 0)
    )
    idx = np.flatnonzero(pair)
    gids = np.arange(len(idx), dtype=np.int64)
    group[idx] = gids
    group[idx + 1] = gids
    return group


def plan_cell(
    label: str,
    kind_name: str,
    workload,
    seed: int,
) -> CellPlan:
    """Statically translate one Table-2 cell, or raise BatchUnsupported."""
    config = config_by_label(label)
    kind = kind_by_name(kind_name)
    path = config.build(kind, workload.bytes_per_client, seed=seed)
    device = path.device
    if device.queue_policy != "fifo":
        raise BatchUnsupported(f"queue policy {device.queue_policy!r}")
    if device.fault_model is not None:
        raise BatchUnsupported("device fault model attached")
    geom = device.geom
    if geom.planes_per_die not in (1, 2):
        raise BatchUnsupported(f"planes_per_die={geom.planes_per_die}")

    traces = workload.traces(path.clients)
    file_sizes: dict[int, int] = {}
    for t in traces:
        for fid, size in t.file_sizes().items():
            file_sizes[fid] = max(file_sizes.get(fid, 0), size)

    # mirror StoragePath.format_and_preload + DeviceFTL.preload checks;
    # the mapping itself is the identity striping, so no FTL state is
    # materialized (this is where the scalar path spends its preload)
    layout = path.fs.format(file_sizes)
    pb = geom.page_bytes
    need = max(layout.device_bytes, getattr(path.fs, "allocated_bytes", 0))
    if need > device.ftl.n_logical_pages * pb:
        raise BatchUnsupported("layout exceeds device logical space")
    npages = -(-need // pb)
    if npages > device.ftl.n_logical_pages:
        raise BatchUnsupported("preload exceeds logical space")

    per_client_groups = [
        [path.fs.translate(req, client=t.client) for req in t] for t in traces
    ]

    raw_cmds: list[DeviceCommand] = []
    for client_groups in per_client_groups:
        for g in client_groups:
            for c in g.commands:
                if c.op != "read":
                    raise BatchUnsupported(f"{c.op!r} command in stream")
                raw_cmds.append(c)

    n_cmds = len(raw_cmds)
    if n_cmds:
        lba = np.fromiter((c.lba for c in raw_cmds), dtype=np.int64, count=n_cmds)
        nb = np.fromiter((c.nbytes for c in raw_cmds), dtype=np.int64, count=n_cmds)
        first = lba // pb
        last = (lba + nb - 1) // pb
        npp = last - first + 1
        total = int(npp.sum())
        cmd_ord = np.repeat(np.arange(n_cmds, dtype=np.int64), npp)
        starts = np.cumsum(npp) - npp
        lpage = first[cmd_ord] + (np.arange(total, dtype=np.int64) - starts[cmd_ord])
        if total and int(lpage.max()) >= npages:
            # a read of never-preloaded space would cold-adopt a mapping
            # (FTL state mutation) on the scalar path
            raise BatchUnsupported("read outside the pre-staged extent")
        ends = lba + nb
        lo_b = np.maximum(lba[cmd_ord], lpage * pb)
        hi_b = np.minimum(ends[cmd_ord], (lpage + 1) * pb)
        nbytes = hi_b - lo_b
        flat = lpage  # identity striping: map[L] == L for preloaded pages
        group_ids = _pair_planes(flat, cmd_ord, geom.plane_units, geom.planes_per_die)
        bounds = np.r_[starts, total]
    else:
        cmd_ord = np.empty(0, dtype=np.int64)
        flat = np.empty(0, dtype=np.int64)
        nbytes = np.empty(0, dtype=np.int64)
        group_ids = np.empty(0, dtype=np.int64)
        bounds = np.zeros(1, dtype=np.int64)
        total = 0

    # rebuild the command groups around planned commands carrying their
    # row slices; group/flow-control structure is untouched
    planned_per_client: list[list[CommandGroup]] = []
    k = 0
    for client_groups in per_client_groups:
        out_groups = []
        for g in client_groups:
            cmds = []
            for c in g.commands:
                cmds.append(
                    PlannedCommand(
                        op=c.op,
                        lba=c.lba,
                        nbytes=c.nbytes,
                        kind=c.kind,
                        barrier=c.barrier,
                        lo=int(bounds[k]),
                        hi=int(bounds[k + 1]),
                    )
                )
                k += 1
            out_groups.append(CommandGroup(posix=g.posix, commands=cmds, client=g.client))
        planned_per_client.append(out_groups)
    groups = (
        planned_per_client[0]
        if len(planned_per_client) == 1
        else _interleave(planned_per_client)
    )

    return CellPlan(
        label=label,
        kind_name=kind_name,
        config=config,
        kind=kind,
        path=path,
        posix_window=workload.posix_window,
        groups=groups,
        n=total,
        flat=flat,
        nbytes=nbytes,
        cmd_ord=cmd_ord,
        group_ids=group_ids,
    )


def stack_plans(plans: list[CellPlan]) -> int:
    """Evaluate the shared per-transaction arithmetic for all plans.

    Concatenates every planned cell into one (cell x txn) int64 block
    and computes address decode, ladder latencies, bus/host transfer
    times and command-sharing discounts in one vectorized pass — the
    same formulas ``TransactionScheduler.submit`` applies per command,
    hoisted across the whole matrix.  Each plan receives ``main`` and
    ``peak`` lane views over its rows.  Returns the stacked row count.
    """
    plans = [p for p in plans]
    if not plans:
        return 0
    ncells = len(plans)
    ns = np.array([p.n for p in plans], dtype=np.int64)
    total = int(ns.sum())
    cellidx = np.repeat(np.arange(ncells, dtype=np.int64), ns)

    def const(vals) -> np.ndarray:
        return np.asarray(vals, dtype=np.int64)[cellidx]

    flat = (
        np.concatenate([p.flat for p in plans]) if total else np.empty(0, np.int64)
    )
    nbytes = (
        np.concatenate([p.nbytes for p in plans]) if total else np.empty(0, np.int64)
    )
    group = (
        np.concatenate([p.group_ids for p in plans])
        if total
        else np.empty(0, np.int64)
    )

    geoms = [p.path.device.geom for p in plans]
    U = const([g.plane_units for g in geoms])
    P = const([g.planes_per_die for g in geoms])
    C = const([g.channels for g in geoms])
    D = const([g.dies_per_package for g in geoms])
    K = const([g.packages_per_channel for g in geoms])
    ppb = const([g.pages_per_block for g in geoms])

    # address decode — the exact integer formulas of the scalar pre-pass
    u = flat % U
    plane = u % P
    rest = u // P
    chan = rest % C
    rest = rest // C
    pkg = rest // D + K * chan
    die = rest % D + D * pkg
    pib = (flat // U) % ppb

    # read-latency ladder gather (the stream is all reads by plan
    # construction); ladders differ per kind, so gather through one
    # concatenated ladder table with per-cell bases
    ladders = [np.asarray(p.kind.read_ladder, dtype=np.int64) for p in plans]
    lad_table = np.concatenate(ladders) if ladders else np.empty(0, np.int64)
    lad_lens = np.array([len(lad) for lad in ladders], dtype=np.int64)
    lad_base = np.cumsum(lad_lens) - lad_lens
    cell_ns = (
        lad_table[lad_base[cellidx] + pib % lad_lens[cellidx]]
        if total
        else np.empty(0, np.int64)
    )
    op = np.full(total, OpCode.READ, dtype=np.int64)

    # command-sharing discount: within one submitted command, members
    # of a multi-plane group after the first ride the already-paid
    # command/address cycles
    cmd_key = np.concatenate(
        [p.cmd_ord + i * (1 << 32) for i, p in enumerate(plans)]
        or [np.empty(0, np.int64)]
    )
    shared = np.zeros(total, dtype=bool)
    if total > 1:
        shared[1:] = (
            (group[1:] >= 0)
            & (group[1:] == group[:-1])
            & (cmd_key[1:] == cmd_key[:-1])
        )

    # lane transfer arithmetic: main uses each cell's configured bus and
    # host; peak uses the unconstrained-interface constants
    bus_npb = np.asarray(
        [1e9 / p.path.device.bus.bytes_per_sec for p in plans], dtype=np.float64
    )[cellidx]
    host_npb = np.asarray(
        [1e9 / p.path.device.host.bytes_per_sec for p in plans], dtype=np.float64
    )[cellidx]
    cmd_ns = const([p.path.device.bus.cmd_ns for p in plans])
    fb_main = (nbytes * bus_npb).astype(np.int64)
    hb_main = (nbytes * host_npb).astype(np.int64)
    cmd_main = np.where(shared, 0, cmd_ns)

    inf_bus = BusSpec(name="infinite", mhz=10**9, ddr=True, cmd_ns=0)
    inf_host = HostPath(name="infinite", bytes_per_sec=1e18, per_request_ns=0)
    fb_peak = (nbytes * (1e9 / inf_bus.bytes_per_sec)).astype(np.int64)
    hb_peak = (nbytes * (1e9 / inf_host.bytes_per_sec)).astype(np.int64)
    cmd_peak = np.where(shared, 0, np.int64(inf_bus.cmd_ns))

    offsets = np.cumsum(ns) - ns
    for i, p in enumerate(plans):
        sl = slice(int(offsets[i]), int(offsets[i] + ns[i]))
        shared_cols = dict(
            op=op[sl],
            flat=flat[sl],
            nbytes=nbytes[sl],
            group=group[sl],
            pib=pib[sl],
            unit=u[sl],
            plane=plane[sl],
            chan=chan[sl],
            pkg=pkg[sl],
            die=die[sl],
            cell_ns=cell_ns[sl],
        )
        p.lanes = {
            "main": LaneCols(
                fb=fb_main[sl], hb=hb_main[sl], cmd=cmd_main[sl], **shared_cols
            ),
            "peak": LaneCols(
                fb=fb_peak[sl], hb=hb_peak[sl], cmd=cmd_peak[sl], **shared_cols
            ),
        }
    return total


def unconstrained_interface() -> tuple[BusSpec, HostPath]:
    """The infinite bus/host pair of the peak (Figs 7b/8b) replays."""
    return (
        BusSpec(name="infinite", mhz=10**9, ddr=True, cmd_ns=0),
        HostPath(name="infinite", bytes_per_sec=1e18, per_request_ns=0),
    )


def plan_or_none(
    label: str, kind_name: str, workload, seed: int
) -> tuple[Optional[CellPlan], Optional[str]]:
    """``plan_cell`` that reports the refusal reason instead of raising."""
    try:
        return plan_cell(label, kind_name, workload, seed), None
    except BatchUnsupported as exc:
        return None, str(exc)
