"""Stacked metrics: every paper metric for many lanes in one sweep.

Mirrors :func:`repro.ssd.metrics.compute_metrics` exactly, but where
the scalar pass loops over resources and requests per cell, this pass
concatenates the finished transaction logs of all lanes (cells) and
computes the interval families once, keyed by dense (lane, resource)
and (lane, request) ids via :mod:`repro.batch.segments`.

Bit-identity argument, per quantity:

* union measures are exact int64 throughout; the scalar path's
  ``subtract``-based exclusive measures become differences of union
  measures (each subtrahend family lies inside its minuend family),
* per-channel wait sums are float64 sums of exact integers far below
  2**53, so ``bincount`` equals the scalar ``ndarray.sum`` exactly,
* the only *inexact* float arithmetic in the scalar pass — the
  contention split, the breakdown normalization, bandwidth division
  and utilization ratios — is replayed here operation-for-operation in
  the same order (channels ascending, BREAKDOWN_KEYS order),
* the pattern-peak replay reuses the inherited ``_schedule_arrays``
  recurrence on the lane's own log columns — the same int64 inputs the
  scalar ``media_pattern_peak`` rebuilds from tuples.
"""

from __future__ import annotations

import numpy as np

from ..interconnect.host import HostPath
from ..nvm.bus import BusSpec
from ..nvm.kinds import NVMKind
from ..ssd.geometry import Geometry
from ..ssd.metrics import (
    BREAKDOWN_KEYS,
    PAL_KEYS,
    RunMetrics,
    _client_bandwidth,
)
from ..ssd.request import OpCode
from ..ssd.scheduler import TransactionScheduler, TxnLog
from .segments import distinct_count, measure_sorted, sorted_filter, union_measure

__all__ = ["compute_metrics_batch", "pattern_peak_from_log"]


def pattern_peak_from_log(log: TxnLog, geom: Geometry, kind: NVMKind) -> float:
    """Media ceiling of the observed pattern, from log columns.

    Equivalent to :func:`repro.ssd.metrics.media_pattern_peak` minus
    the tuple round-trip: the unconstrained scheduler's vectorized
    pre-pass is applied to the log's own int64 columns and fed to the
    inherited recurrence.
    """
    n = len(log)
    if n == 0:
        return 0.0
    host = HostPath(name="infinite", bytes_per_sec=1e18, per_request_ns=0)
    bus = BusSpec(name="infinite", mhz=10**9, ddr=True, cmd_ns=0)
    sched = TransactionScheduler(geom, bus, host, kind=kind)

    op_a = log["op"]
    flat_a = log["flat"]
    nbytes_a = log["nbytes"]
    group_a = log["group"]
    pib_a = log["pib"]
    u_a = flat_a % geom.plane_units
    read_ladder = sched._read_ladder_a
    prog_ladder = sched._prog_ladder_a
    cell_a = np.full(n, kind.erase_ns, dtype=np.int64)
    is_read = op_a == OpCode.READ
    is_write = op_a == OpCode.WRITE
    if is_read.any():
        cell_a[is_read] = read_ladder[pib_a[is_read] % len(read_ladder)]
    if is_write.any():
        cell_a[is_write] = prog_ladder[pib_a[is_write] % len(prog_ladder)]
    fb_a = (nbytes_a * sched._bus_ns_per_byte).astype(np.int64)
    hb_a = (nbytes_a * sched._host_ns_per_byte).astype(np.int64)
    shared = np.zeros(n, dtype=bool)
    if n > 1:
        shared[1:] = (group_a[1:] >= 0) & (group_a[1:] == group_a[:-1])
    cmd_a = np.where(shared, 0, sched._cmd_ns)

    end = sched._schedule_arrays(
        0, 0, 0, "data",
        op_a, flat_a, nbytes_a, group_a, pib_a,
        u_a, log["plane"], log["channel"], log["package"], log["die"],
        cell_a, fb_a, hb_a, cmd_a,
    )
    payload = int(nbytes_a[log["kind_code"] == 0].sum())
    return payload * 1e9 / end if end > 0 else 0.0


def compute_metrics_batch(
    items: list[tuple[TxnLog, Geometry, NVMKind]],
) -> list[RunMetrics]:
    """Derive :class:`RunMetrics` for every (log, geom, kind) lane."""
    n_lanes = len(items)
    if n_lanes == 0:
        return []
    logs = [it[0] for it in items]
    lens = np.array([len(log) for log in logs], dtype=np.int64)
    total = int(lens.sum())
    if total == 0:
        return [RunMetrics(0, 0, 0.0) for _ in items]

    def cat(name: str) -> np.ndarray:
        return np.concatenate([log[name] for log in logs if len(log)])

    lane_row = np.repeat(np.arange(n_lanes, dtype=np.int64), lens)
    chan = cat("channel")
    pkg = cat("package")
    die = cat("die")
    req = cat("req")
    nbytes = cat("nbytes")
    group = cat("group")
    op = cat("op")
    arrival = cat("arrival")
    cs, ce = cat("cell_start"), cat("cell_end")
    fs, fe = cat("fb_start"), cat("fb_end")
    ss, se = cat("ch_start"), cat("ch_end")
    hs, he = cat("h_start"), cat("h_end")
    md = cat("media_done")

    # dense (lane, resource) and (lane, request) keys
    c_max = max(g.channels for _, g, _ in items)
    p_max = max(g.packages for _, g, _ in items)
    lane_chan = lane_row * c_max + chan
    lane_pkg = lane_row * p_max + pkg
    n_ch_keys = n_lanes * c_max
    n_pk_keys = n_lanes * p_max
    req_counts = np.array(
        [int(log["req"].max()) + 1 if len(log) else 0 for log in logs],
        dtype=np.int64,
    )
    req_base = np.cumsum(req_counts) - req_counts
    lane_req = req + np.repeat(req_base, lens)
    n_req_keys = int(req_counts.sum())

    # union-measure families (all exact int64).  Nested families reuse
    # the outermost family's sort: a sorted subset stays sorted, so the
    # 2-way and 1-way channel families (and the 3-way request family)
    # are boolean filters over the already-sorted superset rows.
    two = lambda a, b: np.concatenate([a, b])  # noqa: E731
    lc3 = np.concatenate([lane_chan, lane_chan, lane_chan])
    ids3, k3, s3, e3 = sorted_filter(
        lc3, np.concatenate([cs, fs, ss]), np.concatenate([ce, fe, se])
    )
    m_cell_fb_chb = measure_sorted(k3, s3, e3, n_ch_keys)
    sub = ids3 < 2 * total  # cell + fb rows
    m_cell_fb = measure_sorted(k3[sub], s3[sub], e3[sub], n_ch_keys)
    sub = ids3 < total  # cell rows only
    m_cell = measure_sorted(k3[sub], s3[sub], e3[sub], n_ch_keys)
    m_inflight = union_measure(lane_chan, arrival, md, n_ch_keys)
    m_active = union_measure(lane_row, arrival, md, n_lanes)
    m_pkg_busy = union_measure(
        two(lane_pkg, lane_pkg), two(cs, fs), two(ce, fe), n_pk_keys
    )
    lr3 = np.concatenate([lane_req, lane_req, lane_req])
    ids4, k4, s4, e4 = sorted_filter(
        np.concatenate([lane_req, lr3]),
        np.concatenate([hs, cs, fs, ss]),
        np.concatenate([he, ce, fe, se]),
    )
    m_host_media_req = measure_sorted(k4, s4, e4, n_req_keys)
    sub = ids4 >= total  # media rows (host rows lead the concat)
    m_media_req = measure_sorted(k4[sub], s4[sub], e4[sub], n_req_keys)
    dma_req = m_host_media_req - m_media_req

    # per-transaction waits by op direction (exact integer values)
    is_read = op == OpCode.READ
    is_write = op == OpCode.WRITE
    is_erase = op == OpCode.ERASE
    cell_wait = np.zeros(total, dtype=np.int64)
    chan_wait = np.zeros(total, dtype=np.int64)
    cell_wait[is_read] = cs[is_read] - arrival[is_read]
    chan_wait[is_read] = (fs[is_read] - ce[is_read]) + (ss[is_read] - fe[is_read])
    cell_wait[is_write] = cs[is_write] - fe[is_write]
    chan_wait[is_write] = (ss[is_write] - he[is_write]) + (fs[is_write] - se[is_write])
    cell_wait[is_erase] = cs[is_erase] - arrival[is_erase]
    cw_ch = np.bincount(lane_chan, weights=cell_wait, minlength=n_ch_keys)
    hw_ch = np.bincount(lane_chan, weights=chan_wait, minlength=n_ch_keys)
    count_ch = np.bincount(lane_chan, minlength=n_ch_keys)

    lane_of_req = np.repeat(np.arange(n_lanes, dtype=np.int64), req_counts)
    dma_lane = np.bincount(lane_of_req, weights=dma_req, minlength=n_lanes)

    # parallelism ingredients, per (lane, request)
    n_chans_req = distinct_count(lane_req, chan, n_req_keys)
    n_dies_req = distinct_count(lane_req, die, n_req_keys)
    mp_req = (
        np.bincount(lane_req, weights=(group >= 0).astype(np.int64),
                    minlength=n_req_keys)
        > 0
    )
    w_req = np.bincount(lane_req, weights=nbytes, minlength=n_req_keys)
    rows_req = np.bincount(lane_req, minlength=n_req_keys)

    out: list[RunMetrics] = []
    for i, (log, geom, kind) in enumerate(items):
        n = len(log)
        if n == 0:
            out.append(RunMetrics(0, 0, 0.0))
            continue
        data_mask = log["kind_code"] == 0
        payload = int(log["nbytes"][data_mask].sum())
        makespan = int(log["done"].max() - log["arrival"].min())
        bw = payload * 1e9 / makespan if makespan > 0 else 0.0
        peak = pattern_peak_from_log(log, geom, kind)

        # utilization over the lane's device-active window; resource
        # intervals lie inside the active window, so the scalar's
        # intersect-with-active is the identity
        denom = float(m_active[i])
        ch_count = geom.channels
        pk_count = geom.packages
        if denom <= 0:
            chan_util = 0.0
            pkg_util = 0.0
        else:
            busy_ch = float(m_inflight[i * c_max : i * c_max + ch_count].sum())
            chan_util = busy_ch / (ch_count * denom)
            busy_pk = float(m_pkg_busy[i * p_max : i * p_max + pk_count].sum())
            pkg_util = busy_pk / (pk_count * denom)

        # six-way breakdown: channels ascending, then the same
        # contention split and normalization as the scalar pass
        totals = dict.fromkeys(BREAKDOWN_KEYS, 0.0)
        for c in range(ch_count):
            key = i * c_max + c
            if count_ch[key] == 0:
                continue
            totals["cell"] += float(m_cell[key])
            totals["flash_bus"] += float(m_cell_fb[key] - m_cell[key])
            totals["channel_bus"] += float(m_cell_fb_chb[key] - m_cell_fb[key])
            wait_excl = float(m_inflight[key] - m_cell_fb_chb[key])
            cw = float(cw_ch[key])
            hw = float(hw_ch[key])
            d = cw + hw
            if d > 0:
                totals["cell_contention"] += wait_excl * cw / d
                totals["channel_contention"] += wait_excl * hw / d
        totals["non_overlapped_dma"] = float(dma_lane[i])
        grand = sum(totals.values())
        if grand <= 0:
            breakdown = {k: 0.0 for k in BREAKDOWN_KEYS}
        else:
            breakdown = {k: v / grand for k, v in totals.items()}

        # PAL1-4 class per request, weighted by bytes
        r0 = int(req_base[i])
        r1 = r0 + int(req_counts[i])
        present = rows_req[r0:r1] > 0
        inter = n_dies_req[r0:r1] > n_chans_req[r0:r1]
        mp = mp_req[r0:r1]
        pal_idx = np.where(
            inter & mp, 3, np.where(mp, 2, np.where(inter, 1, 0))
        )
        sums = np.bincount(pal_idx[present], weights=w_req[r0:r1][present],
                           minlength=4)
        weights = {k: float(sums[j]) for j, k in enumerate(PAL_KEYS)}
        w_total = sum(weights.values())
        if w_total <= 0:
            parallelism = {k: 0.0 for k in PAL_KEYS}
        else:
            parallelism = {k: v / w_total for k, v in weights.items()}

        reads = log["op"] == OpCode.READ
        writes = log["op"] == OpCode.WRITE
        out.append(
            RunMetrics(
                payload_bytes=payload,
                makespan_ns=makespan,
                bandwidth_bytes_per_sec=bw,
                client_bandwidth=_client_bandwidth(log),
                pattern_peak_bytes_per_sec=peak,
                remaining_bytes_per_sec=max(0.0, peak - bw),
                channel_utilization=chan_util,
                package_utilization=pkg_util,
                breakdown=breakdown,
                parallelism=parallelism,
                n_txns=n,
                n_requests=int(len(np.unique(log["req"]))),
                read_bytes=int(log["nbytes"][reads].sum()),
                write_bytes=int(log["nbytes"][writes].sum()),
                overhead_bytes=int(log["nbytes"][~data_mask].sum()),
            )
        )
    return out
