"""Batch backend: plan, stack, replay and measure many cells at once.

Per cell the scalar path pays two full replays (main + unconstrained
peak), two FTL preloads, two command-stream translations, two complete
metrics passes (each containing its own pattern-peak re-schedule) and a
tuple round-trip per command.  The batch backend pays one vectorized
plan, one stacked pre-pass shared by the whole matrix, two slim replays
(flow control + recurrence only), and one stacked metrics pass; the
peak replay produces its aggregate bandwidth straight from the log.

Caching matches :func:`repro.experiments.runner.run_config`: the peak
replay is served from / recorded into ``ResultCache`` per cell, and the
returned :class:`ConfigResult` objects carry ``backend="batch"`` so the
cell cache records provenance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..experiments.runner import ConfigResult, Workload, emit_replay_spans
from ..interconnect.host import HostPath
from ..obs import trace as obs
from ..nvm.bus import BusSpec
from ..ssd.controller import SSDevice
from ..ssd.scheduler import TxnLog
from .metrics import compute_metrics_batch
from .plan import BatchUnsupported, CellPlan, PlannedFTL, plan_cell, stack_plans
from .scheduler import ColumnarScheduler

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..experiments.cache import ResultCache

__all__ = ["BatchReport", "run_cells_batch"]

Cell = tuple[str, str]


@dataclass
class BatchReport:
    """What the batch backend did with one set of cells."""

    planned: list[Cell] = field(default_factory=list)
    #: cell -> BatchUnsupported reason; these must run on the scalar path
    fallback: dict[Cell, str] = field(default_factory=dict)
    #: per-cell wall seconds (plan + replays + amortized stacked passes)
    seconds: dict[Cell, float] = field(default_factory=dict)
    stacked_rows: int = 0
    stack_seconds: float = 0.0
    metrics_seconds: float = 0.0


def _install_lane(device: SSDevice, plan: CellPlan, lane: str) -> None:
    """Point the device at the plan's columns for one lane's replay."""
    cols = plan.lanes[lane]
    device.ftl = PlannedFTL(device.ftl.n_logical_pages, device.geom.page_bytes)
    device.scheduler_factory = lambda: ColumnarScheduler(
        device.geom, device.bus, device.host, cols
    )
    device.defer_metrics = True


def _make_unconstrained(device: SSDevice) -> None:
    """Mutate the device into the Figs-7b/8b peak configuration."""
    device.bus = BusSpec(name="infinite", mhz=10**9, ddr=True, cmd_ns=0)
    device.host = HostPath(name="infinite", bytes_per_sec=1e18, per_request_ns=0)
    device.command_overhead_ns = 0


def _aggregate_mb(log: TxnLog) -> float:
    """Aggregate bandwidth of a finished log, as compute_metrics reports."""
    if len(log) == 0:
        return 0.0
    payload = int(log["nbytes"][log["kind_code"] == 0].sum())
    makespan = int(log["done"].max() - log["arrival"].min())
    bw = payload * 1e9 / makespan if makespan > 0 else 0.0
    return bw / 1e6


def run_cells_batch(
    cells: list[Cell],
    workload: Workload,
    seed: int,
    with_remaining: bool = True,
    cache: Optional["ResultCache"] = None,
    keep_metrics: bool = False,
) -> tuple[dict[Cell, ConfigResult], BatchReport]:
    """Run ``cells`` (label, kind_name pairs) on the columnar kernel.

    Returns the results for every cell the plan could express, plus a
    report naming the cells that must fall back to the scalar engine
    (and why).  Results are bit-identical to ``run_config`` — golden
    tests enforce :class:`~repro.ssd.metrics.RunMetrics` equality.
    """
    results: dict[Cell, ConfigResult] = {}
    report = BatchReport()
    plans: list[CellPlan] = []
    secs: dict[Cell, float] = {}
    tr = obs.tracer()

    plan_t0 = time.perf_counter()
    for label, kind_name in cells:
        cell = (label, kind_name)
        t0 = time.perf_counter()
        try:
            plan = plan_cell(label, kind_name, workload, seed)
        except BatchUnsupported as exc:
            report.fallback[cell] = str(exc)
            continue
        secs[cell] = time.perf_counter() - t0
        plans.append(plan)
        report.planned.append(cell)
    if tr is not None and cells:
        tr.wall_event(
            "ftl", "plan_cells", time.perf_counter() - plan_t0,
            planned=len(plans), fallback=len(report.fallback),
        )
    if not plans:
        return results, report

    t0 = time.perf_counter()
    report.stacked_rows = stack_plans(plans)
    report.stack_seconds = time.perf_counter() - t0
    if tr is not None:
        tr.wall_event(
            "ftl", "stack_plans", report.stack_seconds,
            rows=report.stacked_rows,
        )

    peaks: dict[Cell, float] = {}
    lane_items = []
    replayed: list[CellPlan] = []
    for plan in plans:
        cell = (plan.label, plan.kind_name)
        # re-consult the cache per cell, exactly as run_config does: a
        # concurrent run sharing this cache may have finished the cell
        # since the caller's up-front scan
        if cache is not None and not keep_metrics:
            hit = cache.get_cell(
                plan.label, plan.kind_name, workload, seed, with_remaining,
                faults=None,
            )
            if hit is not None:
                results[cell] = hit
                report.seconds[cell] = secs[cell]
                continue
        t0 = time.perf_counter()
        device = plan.path.device
        _install_lane(device, plan, "main")
        main_log = device.run(plan.groups, posix_window=plan.posix_window).log
        if with_remaining:
            peak = None
            if cache is not None:
                peak = cache.get_peak(plan.label, plan.kind_name, workload, seed)
            if peak is None:
                _make_unconstrained(device)
                _install_lane(device, plan, "peak")
                peak_log = device.run(
                    plan.groups, posix_window=plan.posix_window
                ).log
                peak = _aggregate_mb(peak_log)
                if cache is not None:
                    cache.put_peak(plan.label, plan.kind_name, workload, seed, peak)
            peaks[cell] = peak
        lane_items.append((main_log, device.geom, device.kind))
        replayed.append(plan)
        cell_seconds = time.perf_counter() - t0
        secs[cell] += cell_seconds
        if tr is not None:
            tr.wall_event("scheduler", f"{plan.label}|{plan.kind_name}",
                          cell_seconds)
    if not replayed:
        return results, report

    t0 = time.perf_counter()
    metrics_list = compute_metrics_batch(lane_items)
    report.metrics_seconds = time.perf_counter() - t0
    if tr is not None:
        tr.wall_event(
            "metrics", "stacked_metrics", report.metrics_seconds,
            cells=len(replayed),
        )
    shared = (report.stack_seconds + report.metrics_seconds) / len(replayed)

    for plan, m in zip(replayed, metrics_list):
        cell = (plan.label, plan.kind_name)
        per_client_mb = {c: bw / 1e6 for c, bw in m.client_bandwidth.items()}
        bandwidth_mb = (
            float(np.mean(list(per_client_mb.values()))) if per_client_mb else 0.0
        )
        aggregate_mb = m.bandwidth_mb
        remaining = (
            max(0.0, peaks[cell] - aggregate_mb) if with_remaining else 0.0
        )
        results[cell] = ConfigResult(
            label=plan.label,
            kind=plan.kind_name,
            bandwidth_mb=bandwidth_mb,
            aggregate_mb=aggregate_mb,
            remaining_mb=remaining,
            channel_utilization=m.channel_utilization,
            package_utilization=m.package_utilization,
            breakdown=dict(m.breakdown),
            parallelism=dict(m.parallelism),
            metrics=m if keep_metrics else None,
            faults=None,
            backend="batch",
        )
        secs[cell] += shared
        report.seconds[cell] = secs[cell]
        if tr is not None:
            emit_replay_spans(tr, plan.label, plan.kind_name, m)
    return results, report
