"""Discrete-event simulation substrate (engine, resources, statistics).

The engine models cluster-level behaviour (networks, services,
middleware); the NVM transaction path uses the specialized scheduler in
:mod:`repro.ssd.scheduler`.  Both use an integer-nanosecond clock.
"""

from .engine import Event, Interrupt, Process, Simulator
from .resources import Container, Resource, Store
from .stats import RateMeter, Tally, TimeWeighted, percentile
from . import intervals

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Container",
    "Resource",
    "Store",
    "RateMeter",
    "Tally",
    "TimeWeighted",
    "percentile",
    "intervals",
]
