"""Interval arithmetic over half-open ``[start, end)`` time intervals.

The SSD metrics pipeline (utilization, execution-time decomposition,
non-overlapped DMA) is defined in terms of unions, intersections and
differences of busy intervals collected from the transaction scheduler.
All operations here are vectorized with NumPy; intervals are represented
as ``(n, 2)`` float64/int64 arrays of ``(start, end)`` rows.

Empty interval sets are represented by arrays of shape ``(0, 2)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_intervals",
    "merge",
    "measure",
    "intersect",
    "subtract",
    "union",
    "span",
    "coverage_fraction",
]


def as_intervals(pairs) -> np.ndarray:
    """Coerce ``pairs`` to a well-formed ``(n, 2)`` interval array.

    Degenerate rows (``end <= start``) are dropped.  Input may be any
    sequence of ``(start, end)`` pairs or an existing array.
    """
    arr = np.asarray(pairs, dtype=np.float64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.float64)
    arr = arr.reshape(-1, 2)
    return arr[arr[:, 1] > arr[:, 0]]


def merge(iv: np.ndarray) -> np.ndarray:
    """Return the canonical disjoint, sorted union of ``iv``.

    Overlapping and abutting intervals are coalesced.  ``O(n log n)``.
    """
    iv = as_intervals(iv)
    if len(iv) == 0:
        return iv
    order = np.argsort(iv[:, 0], kind="stable")
    iv = iv[order]
    starts = iv[:, 0]
    ends = np.maximum.accumulate(iv[:, 1])
    # A new merged interval begins wherever a start exceeds the running
    # maximum end of everything before it.
    new_group = np.empty(len(iv), dtype=bool)
    new_group[0] = True
    new_group[1:] = starts[1:] > ends[:-1]
    group_ids = np.cumsum(new_group) - 1
    n_groups = group_ids[-1] + 1
    out = np.empty((n_groups, 2), dtype=np.float64)
    first_idx = np.flatnonzero(new_group)
    out[:, 0] = starts[first_idx]
    last_idx = np.r_[first_idx[1:] - 1, len(iv) - 1]
    out[:, 1] = ends[last_idx]
    return out


def measure(iv: np.ndarray) -> float:
    """Total length covered by the union of ``iv``."""
    m = merge(iv)
    if len(m) == 0:
        return 0.0
    return float(np.sum(m[:, 1] - m[:, 0]))


def union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Union of two interval sets, returned in canonical form."""
    a = as_intervals(a)
    b = as_intervals(b)
    if len(a) == 0:
        return merge(b)
    if len(b) == 0:
        return merge(a)
    return merge(np.vstack([a, b]))


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two interval sets (each first canonicalized)."""
    a = merge(a)
    b = merge(b)
    if len(a) == 0 or len(b) == 0:
        return np.empty((0, 2), dtype=np.float64)
    # Sweep: for every pair of merged intervals that overlap, emit the
    # overlap.  Use searchsorted to bound the candidate ranges.
    out = []
    starts_b = b[:, 0]
    ends_b = b[:, 1]
    for s, e in a:
        lo = np.searchsorted(ends_b, s, side="right")
        hi = np.searchsorted(starts_b, e, side="left")
        if hi > lo:
            seg_s = np.maximum(starts_b[lo:hi], s)
            seg_e = np.minimum(ends_b[lo:hi], e)
            keep = seg_e > seg_s
            if np.any(keep):
                out.append(np.column_stack([seg_s[keep], seg_e[keep]]))
    if not out:
        return np.empty((0, 2), dtype=np.float64)
    return np.vstack(out)


def subtract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Set difference ``a \\ b`` as a canonical interval set."""
    a = merge(a)
    b = merge(b)
    if len(a) == 0:
        return a
    if len(b) == 0:
        return a
    out = []
    starts_b = b[:, 0]
    ends_b = b[:, 1]
    for s, e in a:
        lo = np.searchsorted(ends_b, s, side="right")
        hi = np.searchsorted(starts_b, e, side="left")
        cur = s
        for j in range(lo, hi):
            bs, be = starts_b[j], ends_b[j]
            if bs > cur:
                out.append((cur, min(bs, e)))
            cur = max(cur, be)
            if cur >= e:
                break
        if cur < e:
            out.append((cur, e))
    return as_intervals(out)


def span(iv: np.ndarray) -> float:
    """Length from earliest start to latest end (0 for empty sets)."""
    iv = as_intervals(iv)
    if len(iv) == 0:
        return 0.0
    return float(iv[:, 1].max() - iv[:, 0].min())


def coverage_fraction(iv: np.ndarray, window: np.ndarray) -> float:
    """Fraction of ``window`` covered by ``iv`` (both interval sets)."""
    denom = measure(window)
    if denom <= 0.0:
        return 0.0
    return measure(intersect(iv, window)) / denom
