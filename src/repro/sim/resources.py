"""Shared resources for the DES engine: counted resources and stores.

These follow the familiar simpy-style protocol but stay minimal and
deterministic (strict FIFO wakeups).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Event, Simulator

__all__ = ["Resource", "Store", "Container"]


class Resource:
    """A counted resource with ``capacity`` units and FIFO queueing.

    Usage inside a process::

        yield res.acquire()
        try:
            ...
        finally:
            res.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        # busy-interval accounting (for utilization reporting)
        self._busy_since: Optional[int] = None
        self.busy_intervals: list[tuple[int, int]] = []

    def acquire(self) -> Event:
        """Event that fires once a unit is granted to the caller."""
        evt = self.sim.event()
        if self.in_use < self.capacity:
            self._grant(evt)
        else:
            self._waiters.append(evt)
        return evt

    def _grant(self, evt: Event) -> None:
        if self.in_use == 0:
            self._busy_since = self.sim.now
        self.in_use += 1
        evt.succeed(self)

    def release(self) -> None:
        """Return one unit; wakes the longest-waiting acquirer, if any."""
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self.in_use -= 1
        if self.in_use == 0 and self._busy_since is not None:
            if self.sim.now > self._busy_since:
                self.busy_intervals.append((self._busy_since, self.sim.now))
            self._busy_since = None
        if self._waiters:
            self._grant(self._waiters.popleft())

    @property
    def queued(self) -> int:
        """Number of acquire requests still waiting."""
        return len(self._waiters)


class Store:
    """An unbounded (or bounded) FIFO item store.

    ``put`` blocks when the store is full; ``get`` blocks when empty.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` has been deposited."""
        evt = self.sim.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            evt.succeed(None)
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            evt.succeed(None)
        else:
            self._putters.append((evt, item))
        return evt

    def get(self) -> Event:
        """Event whose value is the next item, in FIFO order."""
        evt = self.sim.event()
        if self.items:
            item = self.items.popleft()
            evt.succeed(item)
            if self._putters:
                putter, pending = self._putters.popleft()
                self.items.append(pending)
                putter.succeed(None)
        else:
            self._getters.append(evt)
        return evt

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous-quantity container (e.g. buffer bytes).

    Supports blocking ``get(amount)`` and non-blocking ``put(amount)``.
    """

    def __init__(self, sim: Simulator, capacity: float, init: float = 0.0, name: str = ""):
        if init < 0 or init > capacity:
            raise ValueError("init outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = init
        self.name = name
        self._getters: Deque[tuple[Event, float]] = deque()

    def put(self, amount: float) -> None:
        """Add ``amount``; overflow raises."""
        if amount < 0:
            raise ValueError("negative amount")
        if self.level + amount > self.capacity + 1e-9:
            raise RuntimeError(f"container {self.name!r} overflow")
        self.level += amount
        self._drain()

    def get(self, amount: float) -> Event:
        """Event that fires once ``amount`` has been withdrawn."""
        if amount < 0:
            raise ValueError("negative amount")
        if amount > self.capacity:
            raise ValueError("request exceeds capacity")
        evt = self.sim.event()
        self._getters.append((evt, amount))
        self._drain()
        return evt

    def _drain(self) -> None:
        while self._getters:
            evt, amount = self._getters[0]
            if amount <= self.level + 1e-9:
                self.level -= amount
                self._getters.popleft()
                evt.succeed(amount)
            else:
                break
