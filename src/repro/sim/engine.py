"""A small deterministic discrete-event simulation (DES) engine.

The engine drives the cluster-level models (network links, ION service,
DOoC scheduler, DataCutter streams).  The fine-grained NVM transaction
timing uses the dedicated resource-timeline scheduler in
:mod:`repro.ssd.scheduler`, which is far faster for the millions of
page-level operations an SSD replay generates; the two share the same
clock conventions (integer nanoseconds).

Processes are Python generators that ``yield`` *events*:

* ``sim.timeout(dt)`` — resume after ``dt`` ns,
* ``resource.acquire()`` — resume once a unit of the resource is held,
* ``store.get()`` / ``store.put(item)`` — blocking queue operations,
* another :class:`Event` — resume when that event fires (its value is
  sent back into the generator).

Determinism: ties in the event queue are broken by insertion sequence
number, so identical runs replay identically.  A model whose *results*
are correct must not depend on that tie order, only on simulated time;
``Simulator(tie_break="lifo")`` (or ``REPRO_SIM_TIEBREAK=lifo``)
reverses same-timestamp ordering so the DetSan harness
(``scripts/detsan.py``) can flush out accidental tie-order coupling.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = ["Event", "Process", "Simulator", "Interrupt", "TIE_BREAKS"]


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* with a value, after which every registered
    callback (usually a waiting process) runs at the trigger time.
    """

    __slots__ = ("sim", "callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event immediately (at the current sim time)."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule(self.sim.now, self)
        return self

    def _fire(self) -> None:
        self.triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Process(Event):
    """A running generator; also an event that fires on completion."""

    __slots__ = ("generator", "name", "_target", "alive")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self.alive = True
        # Bootstrap: start the process at the current time.
        boot = Event(sim)
        boot.callbacks.append(self._resume)
        boot.succeed(None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.alive:
            return
        target = self._target
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        evt = Event(self.sim)
        evt.callbacks.append(lambda e: self._step(throw=Interrupt(cause)))
        evt.succeed(None)

    def _resume(self, event: Event) -> None:
        self._target = None
        self._step(value=event.value)

    def _step(self, value: Any = None, throw: Optional[BaseException] = None) -> None:
        try:
            if throw is not None:
                nxt = self.generator.throw(throw)
            else:
                nxt = self.generator.send(value)
        except StopIteration as stop:
            self.alive = False
            if not self.triggered:
                self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(nxt, Event):
            raise TypeError(
                f"process {self.name!r} yielded {type(nxt).__name__}; "
                "processes must yield Event instances"
            )
        self._target = nxt
        if nxt.triggered:
            # Value already known: resume on a fresh immediate event so
            # ordering stays FIFO with respect to other ready processes.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            relay.succeed(nxt.value)
        else:
            nxt.callbacks.append(self._resume)


#: Recognized tie-break orders for same-timestamp events.
TIE_BREAKS = ("fifo", "lifo")


class Simulator:
    """Event loop with an integer-nanosecond clock.

    ``tie_break`` picks the order of same-timestamp events: ``"fifo"``
    (insertion order, the default) or ``"lifo"`` (reverse insertion
    order, a sanitizer mode — any result that changes under it was
    depending on scheduling accidents rather than simulated time).
    ``None`` reads ``REPRO_SIM_TIEBREAK`` from the environment so the
    DetSan harness can flip every simulator in a subprocess at once.
    """

    def __init__(self, tie_break: Optional[str] = None):
        if tie_break is None:
            tie_break = os.environ.get("REPRO_SIM_TIEBREAK", "fifo")
        if tie_break not in TIE_BREAKS:
            raise ValueError(
                f"tie_break must be one of {TIE_BREAKS}, got {tie_break!r}"
            )
        self.tie_break = tie_break
        self.now: int = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._seq = 0

    # -- scheduling ---------------------------------------------------
    def _schedule(self, when: int, event: Event) -> None:
        if when < self.now:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        self._seq += 1
        seq = -self._seq if self.tie_break == "lifo" else self._seq
        heapq.heappush(self._queue, (int(when), seq, event))

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int | float, value: Any = None) -> Event:
        """An event that fires ``delay`` ns from now."""
        if delay < 0:
            raise ValueError("negative delay")
        evt = Event(self)
        evt.value = value
        self._schedule(self.now + int(round(delay)), evt)
        return evt

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting now."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that fires once every event in ``events`` has fired."""
        events = list(events)
        done = self.event()
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        values: list[Any] = [None] * remaining

        def make_cb(i: int):
            def cb(evt: Event):
                nonlocal remaining
                values[i] = evt.value
                remaining -= 1
                if remaining == 0 and not done.triggered:
                    done.succeed(values)

            return cb

        for i, evt in enumerate(events):
            if evt.triggered:
                values[i] = evt.value
                remaining -= 1
            else:
                evt.callbacks.append(make_cb(i))
        if remaining == 0 and not done.triggered:
            done.succeed(values)
        return done

    # -- running ------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulation time.
        """
        queue = self._queue
        while queue:
            when, _seq, event = queue[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(queue)
            self.now = when
            event._fire()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if idle."""
        return self._queue[0][0] if self._queue else None
