"""Statistics collectors shared by the simulators.

``TimeWeighted`` tracks a piecewise-constant signal (queue depth, busy
flag) and integrates it over time; ``Tally`` accumulates scalar samples;
``RateMeter`` converts byte counts over a window into bandwidth.
``percentile`` is re-exported from :mod:`repro.obs.hist` — the single
nearest-rank implementation every layer now shares.
"""

from __future__ import annotations

import math
from typing import Optional

from ..obs.hist import percentile

__all__ = ["Tally", "TimeWeighted", "RateMeter", "percentile"]


class Tally:
    """Streaming scalar statistics (count / mean / variance / extrema)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        """Record one sample (Welford update)."""
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal."""

    def __init__(self, t0: int = 0, value: float = 0.0, name: str = ""):
        self.name = name
        self._t_last = t0
        self._value = value
        self._area = 0.0
        self._t0 = t0
        self.maximum = value

    def update(self, t: int, value: float) -> None:
        """Signal changes to ``value`` at time ``t``."""
        if t < self._t_last:
            raise ValueError("time went backwards")
        self._area += self._value * (t - self._t_last)
        self._t_last = t
        self._value = value
        if value > self.maximum:
            self.maximum = value

    def mean(self, t: Optional[int] = None) -> float:
        """Time-average over ``[t0, t]`` (default: last update time)."""
        t_end = self._t_last if t is None else t
        area = self._area + self._value * max(0, t_end - self._t_last)
        dur = t_end - self._t0
        return area / dur if dur > 0 else self._value

    @property
    def current(self) -> float:
        return self._value


class RateMeter:
    """Bytes moved over elapsed time, reported in MB/s and GB/s."""

    def __init__(self, name: str = ""):
        self.name = name
        self.bytes = 0
        self.t_first: Optional[int] = None
        self.t_last: Optional[int] = None

    def add(self, t_start: int, t_end: int, nbytes: int) -> None:
        """Record a transfer of ``nbytes`` over ``[t_start, t_end]`` ns."""
        self.bytes += nbytes
        if self.t_first is None or t_start < self.t_first:
            self.t_first = t_start
        if self.t_last is None or t_end > self.t_last:
            self.t_last = t_end

    @property
    def elapsed_ns(self) -> int:
        if self.t_first is None or self.t_last is None:
            return 0
        return self.t_last - self.t_first

    @property
    def bytes_per_sec(self) -> float:
        ns = self.elapsed_ns
        return self.bytes * 1e9 / ns if ns > 0 else 0.0

    @property
    def mb_per_sec(self) -> float:
        return self.bytes_per_sec / 1e6

    @property
    def gb_per_sec(self) -> float:
        return self.bytes_per_sec / 1e9
