"""NVM package model: dies sharing a package-internal flash bus.

Section 2.3: cells are grouped into dies, dies into packages, packages
along shared channels.  Data leaving a die's page register crosses the
package-internal bus ("flash bus" in the paper's Figure-10 taxonomy)
and then the shared channel bus ("channel activation").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bus import BusSpec
from .die import Die
from .kinds import NVMKind

__all__ = ["Package"]


@dataclass
class Package:
    """A package of ``dies_per_package`` dies behind one flash bus.

    The flash bus runs at the same signalling rate as the channel bus
    it bridges to (they are trained together under ONFi), but it is a
    distinct resource: two dies in one package serialize on it even when
    the channel is free.
    """

    kind: NVMKind
    bus: BusSpec
    dies_per_package: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 256
    package_id: int = 0
    dies: list[Die] = field(init=False, repr=False)
    #: simulation bookkeeping: time at which the flash bus frees up
    bus_busy_until: int = 0

    def __post_init__(self):
        self.dies = [
            Die(
                kind=self.kind,
                planes=self.planes_per_die,
                blocks_per_plane=self.blocks_per_plane,
                die_id=self.package_id * self.dies_per_package + i,
            )
            for i in range(self.dies_per_package)
        ]

    @property
    def capacity_bytes(self) -> int:
        return sum(d.capacity_bytes for d in self.dies)

    def flash_bus_ns(self, nbytes: int) -> int:
        """Occupancy of the package-internal bus for ``nbytes``."""
        return self.bus.transfer_ns(nbytes)
