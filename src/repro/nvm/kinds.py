"""NVM media kinds and their Table-1 timing parameters.

The paper (Table 1) evaluates four media:

========  =========  ==========  ==============  ==========
kind      page size  read (us)   write (us)      erase (us)
========  =========  ==========  ==============  ==========
SLC       2 kB       25          250             1500
MLC       4 kB       50          250-2200        2500
TLC       8 kB       150         440-6000        3000
PCM       64 B       0.115-0.135 35              35
========  =========  ==========  ==============  ==========

PCM is exposed through a NOR-flash-style page-emulation interface
(Section 2.3: "industry applies NOR flash memory interface logic to PCM
by emulating block-level erase operations and page-based I/O"), so the
SSD layer sees a 4 kB emulated page built out of 64 B GST cell groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NVMKind", "SLC", "MLC", "TLC", "PCM", "KINDS", "kind_by_name"]

US = 1_000  # nanoseconds per microsecond


@dataclass(frozen=True)
class NVMKind:
    """Timing/geometry description of one NVM medium.

    Latencies are integer nanoseconds.  ``write_ns`` is the fastest
    (lower-page) program time; multi-bit cells have slower upper pages,
    described by ``program_ladder`` (one entry per page "rank" inside an
    interleave group — NANDFlashSim's intrinsic latency variation).
    """

    name: str
    bits_per_cell: int
    page_bytes: int
    pages_per_block: int
    read_ns: int
    write_ns: int
    erase_ns: int
    program_ladder: tuple[int, ...] = field(default=())
    read_ladder: tuple[int, ...] = field(default=())
    #: native cell-unit size (== page_bytes for NAND, 64 B for PCM)
    cell_bytes: int = 0
    #: internal write parallelism used by the page-emulation layer (PCM)
    emulation_write_ways: int = 1
    #: endurance in program/erase cycles (order of magnitude)
    endurance_cycles: int = 100_000

    def __post_init__(self):
        if self.cell_bytes == 0:
            object.__setattr__(self, "cell_bytes", self.page_bytes)
        if not self.program_ladder:
            object.__setattr__(self, "program_ladder", (self.write_ns,))
        if not self.read_ladder:
            object.__setattr__(self, "read_ladder", (self.read_ns,))

    # -- derived timing -------------------------------------------------
    def read_latency_ns(self, page_in_block: int = 0) -> int:
        """Cell read (sense) time for a given page position."""
        ladder = self.read_ladder
        return ladder[page_in_block % len(ladder)]

    def program_latency_ns(self, page_in_block: int = 0) -> int:
        """Cell program time for a given page position.

        Multi-bit NAND programs lower pages fast and upper pages slowly;
        position in the ladder models that deterministic variation.
        """
        ladder = self.program_ladder
        return ladder[page_in_block % len(ladder)]

    @property
    def avg_program_ns(self) -> float:
        return sum(self.program_ladder) / len(self.program_ladder)

    @property
    def block_bytes(self) -> int:
        return self.page_bytes * self.pages_per_block

    def die_read_bw(self, planes: int = 1) -> float:
        """Peak per-die sustained read bandwidth in bytes/sec.

        ``planes`` > 1 assumes multi-plane sensing overlaps perfectly.
        """
        return self.page_bytes * planes * 1e9 / self.read_ns

    def die_write_bw(self, planes: int = 1) -> float:
        """Peak per-die sustained program bandwidth in bytes/sec."""
        return self.page_bytes * planes * 1e9 / self.avg_program_ns

    @property
    def is_pcm(self) -> bool:
        return self.name == "PCM"


#: Single-level-cell NAND (Micron MT29F32G08... class parts).
SLC = NVMKind(
    name="SLC",
    bits_per_cell=1,
    page_bytes=2 * 1024,
    pages_per_block=64,
    read_ns=25 * US,
    write_ns=250 * US,
    erase_ns=1500 * US,
    endurance_cycles=100_000,
)

#: Multi-level-cell NAND: 250-2200 us program (lower/upper page ladder).
MLC = NVMKind(
    name="MLC",
    bits_per_cell=2,
    page_bytes=4 * 1024,
    pages_per_block=128,
    read_ns=50 * US,
    write_ns=250 * US,
    erase_ns=2500 * US,
    program_ladder=(250 * US, 2200 * US),
    endurance_cycles=10_000,
)

#: Triple-level-cell NAND: 440-6000 us program across the 3-page ladder.
TLC = NVMKind(
    name="TLC",
    bits_per_cell=3,
    page_bytes=8 * 1024,
    pages_per_block=192,
    read_ns=150 * US,
    write_ns=440 * US,
    erase_ns=3000 * US,
    program_ladder=(440 * US, 3000 * US, 6000 * US),
    endurance_cycles=3_000,
)

#: Phase-change memory behind a NOR-style 4 kB page-emulation interface.
#:
#: Native GST access is 64 B at 115-135 ns read / 35 us write.  The
#: emulated 4 kB page therefore senses 64 cell groups back-to-back
#: (~125 ns each -> 8 us per page read) and programs with 8-way internal
#: parallelism (64/8 * 35 us = 280 us per page).  Emulated block erase
#: is a single RESET sweep (35 us) since PCM writes in place.
PCM = NVMKind(
    name="PCM",
    bits_per_cell=1,
    page_bytes=4 * 1024,
    pages_per_block=128,
    read_ns=8 * US,  # 64 x 125 ns sequential sensing
    write_ns=280 * US,  # 64/8-way x 35 us
    erase_ns=35 * US,
    cell_bytes=64,
    emulation_write_ways=8,
    endurance_cycles=10_000_000,
)

#: Native PCM (GST) cell timing from Table 1, before page emulation.
PCM_NATIVE_READ_NS = (115, 135)
PCM_NATIVE_WRITE_NS = 35 * US
PCM_NATIVE_ERASE_NS = 35 * US
PCM_NATIVE_PAGE_BYTES = 64

#: All media evaluated by the paper, in Table-1 order.
KINDS: tuple[NVMKind, ...] = (SLC, MLC, TLC, PCM)

_BY_NAME = {k.name: k for k in KINDS}


def kind_by_name(name: str) -> NVMKind:
    """Look up a medium by its Table-1 name (case-insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(f"unknown NVM kind {name!r}; have {sorted(_BY_NAME)}") from None
