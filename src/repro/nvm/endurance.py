"""Endurance and lifetime modeling (Section 2.3).

The paper's media discussion: NAND "can result in an increased wear on
specific cells ... dealt with by wear-leveling techniques"; PCM "also
becomes worn out with overuse for writing ... [but] offers 10^3 to
10^5 times better endurance than NAND flash", while needing
"wear-leveling at a much lower level, specifically management for each
GST, which might result in unreasonable memory consumption on the host"
— which is why industry fronts PCM with flash-style block interfaces.

This module estimates device lifetime under a write workload, the
wear-leveling bookkeeping cost the paper warns about, and summarizes
observed wear from an FTL's erase counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ssd.ftl import DeviceFTL
from ..ssd.geometry import Geometry
from .kinds import NVMKind

__all__ = ["LifetimeEstimate", "estimate_lifetime", "wear_report", "gst_tracking_bytes"]

SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected device endurance under a steady write workload."""

    kind: str
    capacity_bytes: int
    writes_bytes_per_day: float
    write_amplification: float
    endurance_cycles: int
    total_write_budget_bytes: float
    lifetime_years: float
    drive_writes_per_day: float


def estimate_lifetime(
    geom: Geometry,
    writes_bytes_per_day: float,
    write_amplification: float = 1.5,
    wear_leveling_efficiency: float = 0.9,
) -> LifetimeEstimate:
    """Project lifetime from Table-1 endurance and the write rate.

    ``write_amplification`` covers GC/RMW traffic; the wear-leveling
    efficiency discounts the ideal uniform-wear budget for the residual
    imbalance real wear-leveling leaves.
    """
    if writes_bytes_per_day <= 0:
        raise ValueError("write rate must be positive")
    if write_amplification < 1.0:
        raise ValueError("write amplification cannot be below 1")
    if not 0 < wear_leveling_efficiency <= 1:
        raise ValueError("wear_leveling_efficiency outside (0, 1]")
    kind = geom.kind
    budget = (
        geom.capacity_bytes
        * kind.endurance_cycles
        * wear_leveling_efficiency
        / write_amplification
    )
    days = budget / writes_bytes_per_day
    return LifetimeEstimate(
        kind=kind.name,
        capacity_bytes=geom.capacity_bytes,
        writes_bytes_per_day=writes_bytes_per_day,
        write_amplification=write_amplification,
        endurance_cycles=kind.endurance_cycles,
        total_write_budget_bytes=budget,
        lifetime_years=days / 365.25,
        drive_writes_per_day=writes_bytes_per_day / geom.capacity_bytes,
    )


def gst_tracking_bytes(kind: NVMKind, capacity_bytes: int, counter_bytes: int = 4) -> int:
    """Host memory needed to track wear per native cell group.

    For PCM this is per-64-B-GST accounting — the "unreasonable memory
    consumption on the host" (Section 2.3) that motivates fronting PCM
    with a flash-style block interface; for NAND it is per erase block.
    """
    if kind.is_pcm:
        units = capacity_bytes // kind.cell_bytes
    else:
        units = capacity_bytes // kind.block_bytes
    return units * counter_bytes


@dataclass(frozen=True)
class WearReport:
    """Observed wear across an FTL's erase counters.

    The write-amplification fields (host vs. media page writes, WAF,
    wear-leveling relocations, retired blocks) default to the fresh
    device so pre-existing callers constructing reports positionally
    keep working.
    """

    total_erases: int
    max_wear: int
    mean_wear: float
    spread: int
    gini: float
    host_writes_pages: int = 0
    media_writes_pages: int = 0
    gc_moved_pages: int = 0
    wl_moved_pages: int = 0
    waf: float = 1.0
    retired_blocks: int = 0

    @property
    def well_leveled(self) -> bool:
        """Rule of thumb: spread within a few cycles of the mean."""
        return self.spread <= max(4.0, 0.5 * self.mean_wear + 4.0)


def _wear_core(ftl: DeviceFTL) -> tuple[int, int, float, int, float]:
    """(total, max, mean, spread, gini) of the erase ledger, memoized.

    The full-ledger scan is O(blocks log blocks); per-exhibit wear
    snapshots query it once per replayed command batch, so the result
    is cached on the FTL keyed by ``erase_gen`` — the ledger generation
    counter every erase bumps.  Unchanged ledger => O(1) amortized.
    """
    cached = getattr(ftl, "_wear_core_cache", None)
    if cached is not None and cached[0] == ftl.erase_gen:
        return cached[1]
    erases = ftl.erases.ravel().astype(np.float64)
    total = float(erases.sum())
    if total == 0:
        core = (0, 0, 0.0, 0, 0.0)
    else:
        sorted_e = np.sort(erases)
        n = len(sorted_e)
        cum = np.cumsum(sorted_e)
        gini = float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)
        core = (
            int(total),
            int(erases.max()),
            float(erases.mean()),
            int(erases.max() - erases.min()),
            gini,
        )
    ftl._wear_core_cache = (ftl.erase_gen, core)
    return core


def wear_report(ftl: DeviceFTL) -> WearReport:
    """Summarize an FTL's erase distribution and write amplification.

    The distribution scan is memoized on the FTL's ``erase_gen`` ledger
    counter (see :func:`_wear_core`); the amplification counters are
    O(1) reads of the FTL's stats dict and always live.
    """
    total, max_wear, mean_wear, spread, gini = _wear_core(ftl)
    stats = ftl.stats
    return WearReport(
        total_erases=total,
        max_wear=max_wear,
        mean_wear=mean_wear,
        spread=spread,
        gini=gini,
        host_writes_pages=stats["host_writes_pages"],
        media_writes_pages=ftl.media_writes_pages,
        gc_moved_pages=stats["gc_moved_pages"],
        wl_moved_pages=stats["wl_moved_pages"],
        waf=ftl.waf,
        retired_blocks=ftl.retired_blocks,
    )
