"""NVM media models: kinds (Table 1), buses, dies, packages."""

from .bus import DDR800, ONFI3_SDR400, BusSpec, bus_by_name
from .die import Die, MediaError, OpKind
from .endurance import LifetimeEstimate, estimate_lifetime, gst_tracking_bytes, wear_report
from .kinds import KINDS, MLC, PCM, SLC, TLC, NVMKind, kind_by_name
from .package import Package

__all__ = [
    "BusSpec",
    "ONFI3_SDR400",
    "DDR800",
    "bus_by_name",
    "Die",
    "LifetimeEstimate",
    "estimate_lifetime",
    "gst_tracking_bytes",
    "wear_report",
    "MediaError",
    "OpKind",
    "Package",
    "NVMKind",
    "SLC",
    "MLC",
    "TLC",
    "PCM",
    "KINDS",
    "kind_by_name",
]
