"""ONFi-style NVM channel/flash bus timing.

Section 3.3 of the paper contrasts the state-of-the-art ONFi 3 bus
(400 MHz single-data-rate, i.e. equivalent to 200 MHz DDR2) with a
future DDR3-1600-class interface.  A channel bus moves one byte per
transfer cycle, so:

* SDR-400:  400 MT/s * 1 B = 400 MB/s per channel,
* DDR-800:  800 MHz * 2 transfers * 1 B = 1600 MB/s per channel.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BusSpec", "ONFI3_SDR400", "DDR800", "bus_by_name"]


@dataclass(frozen=True)
class BusSpec:
    """Timing of a shared NVM data bus.

    ``mhz`` is the clock rate; DDR moves two beats per cycle.  Width is
    one byte (the ONFi x8 interface).  ``cmd_ns`` models command/address
    cycles plus arbitration per bus transaction.
    """

    name: str
    mhz: int
    ddr: bool
    width_bytes: int = 1
    cmd_ns: int = 200

    @property
    def bytes_per_sec(self) -> float:
        beats = self.mhz * 1e6 * (2 if self.ddr else 1)
        return beats * self.width_bytes

    def transfer_ns(self, nbytes: int) -> int:
        """Bus occupancy to move ``nbytes``, excluding command cycles."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return int(round(nbytes * 1e9 / self.bytes_per_sec))

    def transaction_ns(self, nbytes: int) -> int:
        """Command/address cycles plus the data movement."""
        return self.cmd_ns + self.transfer_ns(nbytes)


#: ONFi 3.x bus used by today's bridged devices (400 MHz SDR).
ONFI3_SDR400 = BusSpec(name="SDR-400", mhz=400, ddr=False)

#: The paper's proposed DDR3-1600-class NVM bus (800 MHz DDR).
DDR800 = BusSpec(name="DDR-800", mhz=800, ddr=True)

_BY_NAME = {b.name: b for b in (ONFI3_SDR400, DDR800)}


def bus_by_name(name: str) -> BusSpec:
    """Look up a bus spec by name (``"SDR-400"`` or ``"DDR-800"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown bus {name!r}; have {sorted(_BY_NAME)}") from None
