"""Die- and plane-level NVM state.

A die is the smallest independently-operating unit of media.  Each die
has ``planes`` planes that can operate concurrently on *plane-aligned*
multi-plane commands (same block/page offset across planes); each plane
holds ``blocks_per_plane`` erase blocks of ``pages_per_block`` pages.

The die enforces the NAND erase-before-write discipline: a page may be
programmed only if it has not been programmed since the containing
block's last erase, and pages within a block must be programmed in
order (the sequential-programming rule).  PCM relaxes nothing here
because the paper models PCM behind a NOR-style block interface
(Section 2.3), so the same discipline applies at the emulation layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .kinds import NVMKind

__all__ = ["Die", "OpKind", "MediaError"]


class MediaError(Exception):
    """Violation of media programming discipline (program-before-erase,
    out-of-order program, bad address)."""


class OpKind:
    """NVM transaction-level operation kinds (string constants)."""

    READ = "read"
    WRITE = "write"
    ERASE = "erase"

    ALL = (READ, WRITE, ERASE)


@dataclass
class Die:
    """State and timing of one NVM die.

    ``written`` tracks, per (plane, block), the number of sequentially
    programmed pages ("write frontier"); ``erase_count`` tracks wear.
    """

    kind: NVMKind
    planes: int = 2
    blocks_per_plane: int = 256
    die_id: int = 0
    #: simulation bookkeeping: time at which the die becomes free
    busy_until: int = 0
    written: np.ndarray = field(init=False, repr=False)
    erase_count: np.ndarray = field(init=False, repr=False)
    #: planes failed by fault injection; operations on them raise a
    #: typed :class:`~repro.faults.errors.DieFailure` instead of
    #: silently succeeding
    failed_planes: frozenset = field(init=False, repr=False)

    def __post_init__(self):
        self.written = np.zeros((self.planes, self.blocks_per_plane), dtype=np.int32)
        self.erase_count = np.zeros((self.planes, self.blocks_per_plane), dtype=np.int64)
        self.failed_planes = frozenset()

    # -- capacity -------------------------------------------------------
    @property
    def pages_per_block(self) -> int:
        return self.kind.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return (
            self.planes
            * self.blocks_per_plane
            * self.kind.pages_per_block
            * self.kind.page_bytes
        )

    # -- timing ---------------------------------------------------------
    def cell_ns(self, op: str, page_in_block: int = 0, nplanes: int = 1) -> int:
        """Cell-array occupancy of one (possibly multi-plane) operation.

        Multi-plane commands operate the planes concurrently, so the
        occupancy equals the single-plane latency (the win the paper's
        PAL3 level captures).
        """
        if nplanes < 1 or nplanes > self.planes:
            raise ValueError(f"nplanes {nplanes} outside [1, {self.planes}]")
        if op == OpKind.READ:
            return self.kind.read_latency_ns(page_in_block)
        if op == OpKind.WRITE:
            return self.kind.program_latency_ns(page_in_block)
        if op == OpKind.ERASE:
            return self.kind.erase_ns
        raise ValueError(f"unknown op {op!r}")

    # -- fault injection -------------------------------------------------
    def fail_plane(self, plane: int) -> None:
        """Mark one plane permanently failed (fault injection)."""
        if not (0 <= plane < self.planes):
            raise MediaError(f"plane {plane} out of range")
        self.failed_planes = self.failed_planes | {plane}

    def is_plane_failed(self, plane: int) -> bool:
        return plane in self.failed_planes

    @property
    def failed(self) -> bool:
        """True when every plane of the die is failed."""
        return len(self.failed_planes) == self.planes

    # -- state-machine operations ----------------------------------------
    def _check_addr(self, plane: int, block: int, page: int | None = None) -> None:
        if not (0 <= plane < self.planes):
            raise MediaError(f"plane {plane} out of range")
        if plane in self.failed_planes:
            from ..faults.errors import DieFailure

            raise DieFailure(
                f"die {self.die_id} plane {plane} is failed",
                site=("die", self.die_id, plane),
            )
        if not (0 <= block < self.blocks_per_plane):
            raise MediaError(f"block {block} out of range")
        if page is not None and not (0 <= page < self.kind.pages_per_block):
            raise MediaError(f"page {page} out of range")

    def program(self, plane: int, block: int, page: int) -> None:
        """Program one page, enforcing sequential-in-block ordering."""
        self._check_addr(plane, block, page)
        frontier = self.written[plane, block]
        if page != frontier:
            if page < frontier:
                raise MediaError(
                    f"program-before-erase: plane {plane} block {block} "
                    f"page {page} already programmed (frontier {frontier})"
                )
            raise MediaError(
                f"out-of-order program: plane {plane} block {block} page "
                f"{page}, expected {frontier}"
            )
        self.written[plane, block] = frontier + 1

    def erase(self, plane: int, block: int) -> None:
        """Erase one block, resetting its write frontier."""
        self._check_addr(plane, block)
        self.written[plane, block] = 0
        self.erase_count[plane, block] += 1

    def is_programmed(self, plane: int, block: int, page: int) -> bool:
        """True if the page currently holds programmed data."""
        self._check_addr(plane, block, page)
        return page < self.written[plane, block]

    def read(self, plane: int, block: int, page: int) -> None:
        """Validate a read; reading an erased page is permitted (it just
        returns all-ones on real media) so this only checks addressing."""
        self._check_addr(plane, block, page)

    @property
    def max_wear(self) -> int:
        return int(self.erase_count.max())

    @property
    def total_erases(self) -> int:
        return int(self.erase_count.sum())
