"""Packetized ION co-simulation: the fabric-degradation calibrator.

The Table-2 experiment matrix reaches the ION analytically
(:func:`repro.core.architecture.make_ion_device` builds a calibrated
GPFS host path), so fabric loss cannot be injected there directly.
This module runs the explicit DES pipeline of
:func:`repro.cluster.ion.simulate_ion_service` — clients, NSD threads,
SSD, shared IB port — with the port swapped for a
:class:`~repro.netfault.link.PacketLink`, and reports the **delivered
bandwidth factor**: degraded aggregate bandwidth over the healthy run's.

That factor is exactly 1.0 at ``loss_rate == 0`` (the packet link is
bit-identical to the bulk wire) and scales the analytic ION path's GPFS
client efficiency in the exhibit, so the CNL-vs-ION gap can be re-drawn
under fabric degradation without forking the experiment pipeline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..cluster.ion import IonServiceConfig, simulate_ion_service
from ..faults.errors import LinkUnreachable
from ..sim import Resource, Simulator
from .link import PacketLink
from .spec import NetFaultSpec
from .stats import NetStatsRecorder

__all__ = ["FabricCalibration", "simulate_packet_ion", "calibrate_fabric"]


@dataclass
class FabricCalibration:
    """Outcome of one lossy-fabric calibration run."""

    loss_rate: float
    healthy_mb: float  # per-client MB/s of the loss-free co-sim
    degraded_mb: float  # per-client MB/s under the netfault regime
    delivered_factor: float  # degraded / healthy, 1.0 when healthy
    unreachable: bool  # the ARQ budget was exhausted (typed, no hang)
    link: dict  # PacketLink.snapshot() of the degraded run


def simulate_packet_ion(
    cfg: IonServiceConfig = IonServiceConfig(),
    netfault: Optional[NetFaultSpec] = None,
    fault_model=None,
    stats: Optional[NetStatsRecorder] = None,
):
    """The CN<->ION pipeline of :func:`simulate_ion_service`, but with
    the shared IB port packetized.  Returns ``(report, link)``; raises
    :class:`~repro.faults.errors.LinkUnreachable` out of the DES when
    the retransmission budget is exhausted."""
    from ..cluster.ion import IonServiceReport

    if cfg.clients < 1 or cfg.bytes_per_client < cfg.rpc_bytes:
        raise ValueError("need at least one client and one RPC of data")
    if netfault is None:
        netfault = NetFaultSpec()
    sim = Simulator()
    wire_spec = dataclasses.replace(
        cfg.link,
        packet_efficiency=cfg.link.packet_efficiency * cfg.transport_efficiency,
    )
    port = PacketLink(
        sim, wire_spec, netfault, name="ib-port", fault_model=fault_model,
        stats=stats,
    )
    nsd = Resource(sim, capacity=cfg.nsd_threads, name="nsd-threads")
    ssd = Resource(sim, capacity=1, name="ion-ssd")
    ssd_ns_per_rpc = int(cfg.rpc_bytes * 1e9 / cfg.ssd_bytes_per_sec)
    finish: dict[int, int] = {}

    def rpc(client: int):
        yield sim.timeout(cfg.rpc_overhead_ns)
        yield nsd.acquire()
        try:
            yield ssd.acquire()
            try:
                yield sim.timeout(ssd_ns_per_rpc)
            finally:
                ssd.release()
            yield from port.transfer(cfg.rpc_bytes)
        finally:
            nsd.release()

    def client_proc(client: int):
        n_rpcs = cfg.bytes_per_client // cfg.rpc_bytes
        outstanding = []
        for _i in range(n_rpcs):
            while len(outstanding) >= cfg.client_window:
                done = outstanding.pop(0)
                if not done.triggered:
                    yield done
            outstanding.append(sim.process(rpc(client)))
        for p in outstanding:
            if not p.triggered:
                yield p
        finish[client] = sim.now

    for c in range(cfg.clients):
        sim.process(client_proc(c))
    end = sim.run()

    report = IonServiceReport(makespan_ns=end)
    for c, t in finish.items():
        report.per_client_bytes_per_sec[c] = (
            cfg.bytes_per_client * 1e9 / t if t > 0 else 0.0
        )
    report.aggregate_bytes_per_sec = (
        cfg.clients * cfg.bytes_per_client * 1e9 / end if end > 0 else 0.0
    )
    report.link_utilization = port.utilization(end)
    return report, port


def calibrate_fabric(
    loss_rate: float,
    net_seed: int = 0,
    mtu_bytes: int = 4096,
    cfg: IonServiceConfig = IonServiceConfig(),
    stats: Optional[NetStatsRecorder] = None,
) -> FabricCalibration:
    """Delivered-bandwidth factor of the GPFS fabric at one loss rate.

    The healthy baseline comes from the stock bulk-wire co-sim (which
    the loss-0 packet path matches bit-for-bit); the degraded number
    from the packetized run.  Budget exhaustion is caught and reported
    as ``unreachable`` with factor 0.0 — typed, never a hang.
    """
    healthy = simulate_ion_service(cfg)
    healthy_mb = healthy.per_client_mb
    spec = NetFaultSpec(seed=net_seed, loss_rate=loss_rate,
                        mtu_bytes=mtu_bytes)
    try:
        degraded, port = simulate_packet_ion(cfg, spec, stats=stats)
    except LinkUnreachable:
        return FabricCalibration(
            loss_rate=loss_rate, healthy_mb=healthy_mb, degraded_mb=0.0,
            delivered_factor=0.0, unreachable=True, link={},
        )
    degraded_mb = degraded.per_client_mb
    factor = degraded_mb / healthy_mb if healthy_mb > 0 else 0.0
    if loss_rate == 0.0:
        factor = 1.0  # bit-identical by construction; avoid fp wobble
    return FabricCalibration(
        loss_rate=loss_rate, healthy_mb=healthy_mb, degraded_mb=degraded_mb,
        delivered_factor=min(1.0, factor), unreachable=False,
        link=port.snapshot(),
    )
