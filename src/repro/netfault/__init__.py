"""repro.netfault — lossy-fabric resilience.

Packet-level links with go-back-N ARQ/retransmission, adaptive rate
fallback (QDR → DDR → SDR), a seeded per-packet loss oracle in the
:mod:`repro.faults.plan` idiom, per-packet observability (sim spans +
CSV stats), a recorded-trace replay driver for the service, and the
``python -m repro netfault`` exhibit re-plotting the paper's CNL-vs-ION
gap under fabric degradation.

Determinism contract (golden-tested): ``loss_rate == 0`` is
bit-identical to the healthy :class:`~repro.cluster.network.SharedLink`
on both experiment backends at any worker count; with loss > 0,
retransmission schedules, results and the per-packet CSV are byte-
stable across worker counts under a fixed seed.
"""

from .arq import PacketEvent, TransferSchedule, compute_schedule
from .calibrate import FabricCalibration, calibrate_fabric, simulate_packet_ion
from .exhibit import DEFAULT_LOSS_RATES, NetfaultReport, netfault_exhibit
from .link import PacketLink
from .rate import AdaptiveRateController
from .replay import ReplayReport, load_job_trace, replay_jobs, run_replay
from .spec import RATE_LEVELS, NetFaultSpec, PacketOracle
from .stats import NetStatsRecorder

__all__ = [
    "NetFaultSpec",
    "PacketOracle",
    "RATE_LEVELS",
    "AdaptiveRateController",
    "PacketEvent",
    "TransferSchedule",
    "compute_schedule",
    "PacketLink",
    "NetStatsRecorder",
    "FabricCalibration",
    "simulate_packet_ion",
    "calibrate_fabric",
    "NetfaultReport",
    "netfault_exhibit",
    "DEFAULT_LOSS_RATES",
    "ReplayReport",
    "load_job_trace",
    "replay_jobs",
    "run_replay",
]
