"""Adaptive rate-fallback controller (QDR → DDR → SDR).

Real InfiniBand fabrics respond to sustained symbol errors by
retraining at a lower signalling rate rather than retransmitting
forever at full speed; links later probe back up when the error rate
subsides.  :class:`AdaptiveRateController` models that policy over the
:data:`~repro.netfault.spec.RATE_LEVELS` ladder:

* **fallback** — when at least ``fallback_losses`` of the last
  ``fallback_window`` packet outcomes were losses, step down one
  level and restart the observation window;
* **recovery probe** — after ``recovery_quiet_packets`` consecutive
  clean deliveries, step up one level (the quiet period is the probe).

State advances once per packet outcome, in DES order, so the rate
trajectory is a pure function of the loss sequence — deterministic
across worker counts.  At factor 1.0 the controller is an exact no-op
on wire durations (loss-0 bit-identity depends on it).
"""

from __future__ import annotations

from collections import deque

from .spec import RATE_LEVELS, NetFaultSpec

__all__ = ["AdaptiveRateController"]


class AdaptiveRateController:
    """Per-link rate ladder driven by packet outcomes."""

    def __init__(self, spec: NetFaultSpec):
        self.spec = spec
        self.level = 0  # index into RATE_LEVELS; 0 = full rate
        self.fallbacks = 0
        self.recoveries = 0
        self._window: deque[bool] = deque(maxlen=spec.fallback_window)
        self._quiet = 0

    @property
    def level_name(self) -> str:
        return RATE_LEVELS[self.level][0]

    @property
    def factor(self) -> float:
        """Current payload-bandwidth factor (1.0 = full rate)."""
        return RATE_LEVELS[self.level][1]

    def stretch(self, wire_ns: int) -> int:
        """Wire duration at the current rate; exact no-op at factor 1."""
        f = self.factor
        if f == 1.0:
            return wire_ns
        return int(round(wire_ns / f))

    def on_outcome(self, lost: bool) -> str | None:
        """Fold one packet outcome in; returns "fallback", "recovery"
        or ``None`` when the level did not move."""
        self._window.append(lost)
        if lost:
            self._quiet = 0
            losses = sum(self._window)
            if (
                losses >= self.spec.fallback_losses
                and self.level < len(RATE_LEVELS) - 1
            ):
                self.level += 1
                self.fallbacks += 1
                self._window.clear()
                return "fallback"
            return None
        self._quiet += 1
        if self._quiet >= self.spec.recovery_quiet_packets and self.level > 0:
            self.level -= 1
            self.recoveries += 1
            self._quiet = 0
            self._window.clear()
            return "recovery"
        return None

    def snapshot(self) -> dict:
        return {
            "level": self.level,
            "level_name": self.level_name,
            "factor": self.factor,
            "fallbacks": self.fallbacks,
            "recoveries": self.recoveries,
        }
