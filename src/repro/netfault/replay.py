"""Recorded-trace replay driver for the simulation service.

Instead of synthetic matrices, drive :class:`repro.service.SimulationService`
with a **captured request stream**: a JSON-lines file of wire-format
job dicts (see :func:`repro.service.jobs.job_from_dict`), each carrying
an ``arrival_offset_s`` — seconds after replay start at which the job
was observed to arrive.  The driver submits each job at its (speed-
scaled) offset, collects completions, and reports per-job latency — a
load-generator whose traffic shape is real, not Poisson.

Trace format, one object per line::

    {"job": "cell", "label": "CNL-UFS", "kind": "SLC",
     "arrival_offset_s": 0.0}
    {"job": "headline", "arrival_offset_s": 0.25, "trace_id": "req-2"}

Blank lines and ``#`` comments are skipped.  Offsets need not be
sorted; the driver replays in arrival order.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..service.jobs import JobSpec, JobValidationError, job_from_dict

__all__ = ["ReplayOutcome", "ReplayReport", "load_job_trace", "replay_jobs",
           "run_replay"]


@dataclass
class ReplayOutcome:
    """One replayed job's fate."""

    index: int
    describe: str
    arrival_offset_s: float
    latency_s: float
    status: str  # "ok" | error code
    coalesced: bool = False


@dataclass
class ReplayReport:
    """Roll-up of one trace replay."""

    jobs: int = 0
    ok: int = 0
    failed: int = 0
    coalesced: int = 0
    wall_s: float = 0.0
    outcomes: list[ReplayOutcome] = field(default_factory=list)

    @property
    def latencies_s(self) -> list[float]:
        return [o.latency_s for o in self.outcomes if o.status == "ok"]

    def text(self) -> str:
        lats = sorted(self.latencies_s)

        def pct(p: float) -> float:
            if not lats:
                return 0.0
            return lats[min(len(lats) - 1, int(p * len(lats)))]

        lines = [
            f"trace replay: {self.jobs} jobs in {self.wall_s:.2f}s wall "
            f"({self.ok} ok, {self.failed} failed, "
            f"{self.coalesced} coalesced)",
        ]
        if lats:
            lines.append(
                f"  latency p50 {pct(0.50):.3f}s  p90 {pct(0.90):.3f}s  "
                f"p99 {pct(0.99):.3f}s  max {lats[-1]:.3f}s"
            )
        return "\n".join(lines)


def load_job_trace(path: Union[str, os.PathLike]) -> list[JobSpec]:
    """Parse a JSONL job trace; returns specs in arrival order.

    Malformed JSON or an invalid job raises
    :class:`~repro.service.jobs.JobValidationError` naming the line —
    a bad trace fails at load, not minutes into the replay.
    """
    specs: list[JobSpec] = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise JobValidationError(
                f"{path}:{lineno}: not valid JSON ({exc})"
            ) from None
        spec = job_from_dict(data)
        specs.append(spec)
    specs.sort(key=lambda s: s.arrival_offset_s)  # stable: ties keep file order
    return specs


async def replay_jobs(
    service,
    specs: list[JobSpec],
    speed: float = 1.0,
) -> ReplayReport:
    """Drive ``service`` with ``specs`` at their recorded offsets.

    ``speed`` scales the clock: 2.0 replays twice as fast, 0 submits
    everything immediately (max pressure).  The service must already be
    started; the driver awaits every completion before returning.
    """
    if speed < 0:
        raise ValueError("speed must be >= 0")
    report = ReplayReport()
    t0 = time.perf_counter()

    async def one(index: int, spec: JobSpec) -> ReplayOutcome:
        offset = spec.arrival_offset_s / speed if speed > 0 else 0.0
        delay = offset - (time.perf_counter() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        submitted = time.perf_counter()
        try:
            handle = service.submit(spec)
        except Exception as exc:
            code = getattr(exc, "code", type(exc).__name__)
            return ReplayOutcome(
                index, spec.describe(), spec.arrival_offset_s, 0.0, code
            )
        try:
            await handle.result()
            status = "ok"
        except Exception as exc:
            status = getattr(exc, "code", type(exc).__name__)
        return ReplayOutcome(
            index, spec.describe(), spec.arrival_offset_s,
            time.perf_counter() - submitted, status,
            coalesced=handle.coalesced,
        )

    outcomes = await asyncio.gather(
        *(one(i, s) for i, s in enumerate(specs))
    )
    report.outcomes = sorted(outcomes, key=lambda o: o.index)
    report.jobs = len(report.outcomes)
    report.ok = sum(1 for o in report.outcomes if o.status == "ok")
    report.failed = report.jobs - report.ok
    report.coalesced = sum(1 for o in report.outcomes if o.coalesced)
    report.wall_s = time.perf_counter() - t0
    return report


def run_replay(
    path: Union[str, os.PathLike],
    workers: int = 1,
    speed: float = 1.0,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    max_concurrency: int = 4,
) -> ReplayReport:
    """Load a trace and replay it against an in-process service."""
    from ..experiments.cache import ResultCache
    from ..service.server import SimulationService

    specs = load_job_trace(path)

    async def _run() -> ReplayReport:
        service = SimulationService(
            workers_per_job=workers,
            cache=ResultCache(cache_dir),
            max_concurrency=max_concurrency,
        )
        await service.start()
        try:
            return await replay_jobs(service, specs, speed=speed)
        finally:
            await service.shutdown()

    return asyncio.run(_run())
