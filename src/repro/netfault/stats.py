"""Per-packet CSV stats recorder (the net-rl simulator idiom).

One recorder owns one ``net_stats.csv``: a line-buffered row per packet
event plus running totals, cheap enough to leave on for whole sweeps
and trivially loadable into pandas/gnuplot.  Unlike the wall-clocked
:class:`~repro.obs.export.CsvStatsRecorder`, every timestamp here is
**simulated** nanoseconds — rows are emitted in DES order from the
coordinator process, so the file is byte-stable across worker counts
under a fixed seed (pinned by the determinism tests).
"""

from __future__ import annotations

import csv
import os
from typing import IO, Iterable, Optional, Union

__all__ = ["NetStatsRecorder"]


class NetStatsRecorder:
    """Per-packet event log plus running totals.

    ``log_dir=None`` keeps only the in-memory totals, so links never
    guard their ``on_packet`` calls.
    """

    FIELDS = (
        "t_ns",  # simulated time of the event (deterministic)
        "link",  # link name
        "transfer",  # per-link transfer sequence number
        "pkt",  # packet sequence within the transfer
        "attempt",  # 0 = first send, n = nth retransmit
        "event",  # sent|delivered|lost|backoff|fallback|recovery
        "size_bytes",  # frame payload (0 for control rows)
        "rate_level",  # QDR|DDR|SDR at the moment of the event
    )

    def __init__(self, log_dir: Optional[Union[str, os.PathLike]] = None):
        self.log_dir = str(log_dir) if log_dir is not None else None
        self._fh: Optional[IO[str]] = None
        self._writer = None
        if self.log_dir:
            os.makedirs(self.log_dir, exist_ok=True)
            self._fh = open(
                os.path.join(self.log_dir, "net_stats.csv"), "w", 1
            )
            self._writer = csv.writer(self._fh, lineterminator="\n")
            self._writer.writerow(self.FIELDS)
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        self.retransmits = 0
        self.bytes_delivered = 0

    def _write(self, row: Iterable) -> None:
        if self._writer is not None:
            self._writer.writerow(list(row))

    def on_packet(
        self,
        t_ns: int,
        link: str,
        transfer: int,
        pkt: int,
        attempt: int,
        event: str,
        size_bytes: int,
        rate_level: str,
    ) -> None:
        if event == "sent":
            self.packets_sent += 1
            if attempt > 0:
                self.retransmits += 1
        elif event == "delivered":
            self.packets_delivered += 1
            self.bytes_delivered += size_bytes
        elif event == "lost":
            self.packets_lost += 1
        self._write(
            [t_ns, link, transfer, pkt, attempt, event, size_bytes,
             rate_level]
        )

    def summary(self) -> dict:
        return {
            "packets_sent": self.packets_sent,
            "packets_delivered": self.packets_delivered,
            "packets_lost": self.packets_lost,
            "retransmits": self.retransmits,
            "bytes_delivered": self.bytes_delivered,
        }

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._writer = None

    def __del__(self):  # net-rl idiom: never leak the handle
        self.close()
