"""The ``python -m repro netfault`` exhibit: CNL-vs-ION under loss.

The paper's Table 2 / Figures 7-10 assume a clean QDR fabric.  This
exhibit sweeps packet-loss rate x config x NVM kind and re-plots the
CNL-vs-ION bandwidth gap as the fabric degrades:

1. the **healthy matrix** comes from the stock experiment engine — at
   loss 0 the packetized link is bit-identical to the bulk wire, so the
   loss-0 row *is* the paper's matrix (golden-tested on both backends
   at any worker count);
2. each loss rate runs the packetized ION co-simulation
   (:func:`~repro.netfault.calibrate.calibrate_fabric`) to measure the
   **delivered-bandwidth factor** of the GPFS fabric under go-back-N
   ARQ, backoff and rate fallback;
3. ION cells are then re-run with the analytic GPFS client efficiency
   scaled by that factor, while CNL cells — fabric-independent by
   construction — carry over unchanged.  That separation is the
   paper's argument, quantified: loss melts the ION column only.

A saturating loss rate exhausts the retransmission budget; the exhibit
reports the typed ``unreachable`` outcome (bandwidth 0) instead of
hanging, and delivered bandwidth is monotone non-increasing in the
loss rate (per-site oracle draws are shared across rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.architecture import GPFS_CLIENT_EFFICIENCY, make_ion_device
from ..experiments.configs import TABLE2_CONFIGS, config_by_label
from ..experiments.runner import ConfigResult, Workload
from ..nvm.kinds import KINDS, kind_by_name
from ..obs.registry import MetricsRegistry
from ..trace.replay import replay
from .calibrate import FabricCalibration, calibrate_fabric
from .stats import NetStatsRecorder

__all__ = ["NetfaultReport", "netfault_exhibit", "DEFAULT_LOSS_RATES"]

DEFAULT_LOSS_RATES = (0.0, 0.01, 0.05, 0.2)

#: flattened snapshot keys that are cumulative counters, not gauges
_MONOTONIC = frozenset(
    {
        "transfers", "bytes_moved", "busy_ns", "packets_sent",
        "packets_lost", "retransmits", "backoff_ns", "wasted_ns",
        "unreachable", "fallbacks", "recoveries",
    }
)


@dataclass
class NetfaultReport:
    """Structured results + rendered text of one netfault sweep."""

    workload: Workload
    loss_rates: tuple[float, ...]
    labels: tuple[str, ...]
    kinds: tuple[str, ...]
    net_seed: int
    mtu_bytes: int
    calibrations: dict[float, FabricCalibration] = field(default_factory=dict)
    #: (loss_rate, label, kind) -> ConfigResult
    results: dict[tuple[float, str, str], ConfigResult] = field(
        default_factory=dict
    )
    text: str = ""

    def publish(self, registry: MetricsRegistry) -> None:
        """Expose the sweep through the Prometheus endpoint."""
        for rate, cal in sorted(self.calibrations.items()):
            labels = {"loss_rate": f"{rate:g}"}
            registry.gauge(
                "repro_netfault_delivered_factor",
                "delivered fabric bandwidth over healthy, per loss rate",
                labels,
            ).set(cal.delivered_factor)
            registry.gauge(
                "repro_netfault_unreachable",
                "1 when the ARQ retransmission budget was exhausted",
                labels,
            ).set(1.0 if cal.unreachable else 0.0)
            if cal.link:
                registry.absorb(
                    "repro_netfault_link", cal.link, labels=labels,
                    monotonic=_MONOTONIC,
                )
        for (rate, label, kind), res in sorted(self.results.items()):
            registry.gauge(
                "repro_netfault_bandwidth_mb",
                "per-client bandwidth under fabric loss (MB/s)",
                {"loss_rate": f"{rate:g}", "config": label, "kind": kind},
            ).set(res.bandwidth_mb)


def _degraded_ion_cell(
    label: str,
    kind_name: str,
    workload: Workload,
    seed: int,
    factor: float,
) -> ConfigResult:
    """Re-run one ION cell with the fabric derated to ``factor``.

    Mirrors the :func:`~repro.experiments.runner.run_config` ION path
    but scales the calibrated GPFS client efficiency by the measured
    delivered-bandwidth factor.  Runs uncached in the coordinator (the
    result depends on the netfault regime, not the cache schema) and
    skips the peak replay — the exhibit compares delivered bandwidth.
    """
    kind = kind_by_name(kind_name)
    if factor <= 0.0:
        return ConfigResult(
            label=label, kind=kind_name, bandwidth_mb=0.0, aggregate_mb=0.0,
            remaining_mb=0.0, channel_utilization=0.0,
            package_utilization=0.0,
        )
    path = make_ion_device(
        kind,
        workload.bytes_per_client,
        seed=seed,
        gpfs_efficiency=GPFS_CLIENT_EFFICIENCY * factor,
    )
    traces = workload.traces(path.clients)
    summary = replay(path, traces, posix_window=workload.posix_window)
    m = summary.metrics
    return ConfigResult(
        label=label,
        kind=kind_name,
        bandwidth_mb=summary.bandwidth_mb,
        aggregate_mb=summary.aggregate_mb,
        remaining_mb=0.0,
        channel_utilization=m.channel_utilization,
        package_utilization=m.package_utilization,
        breakdown=dict(m.breakdown),
        parallelism=dict(m.parallelism),
    )


def _render(report: NetfaultReport) -> str:
    ion_labels = [
        lb for lb in report.labels
        if config_by_label(lb).location == "ION"
    ]
    cnl_labels = [
        lb for lb in report.labels
        if config_by_label(lb).location == "CNL"
    ]
    lines = [
        "CNL vs ION under fabric degradation "
        f"(go-back-N ARQ, mtu {report.mtu_bytes}, seed {report.net_seed})",
        "",
        f"{'loss':>6}  {'delivered':>9}  {'rate':>5}  {'retx':>6}  "
        f"{'kind':<4}  {'ION MB/s':>9}  {'best CNL':>9}  {'CNL:ION':>8}",
    ]
    for rate in report.loss_rates:
        cal = report.calibrations[rate]
        level = cal.link.get("rate", {}).get("level_name", "QDR")
        retx = cal.link.get("retransmits", 0)
        delivered = (
            "unreach" if cal.unreachable else f"{cal.delivered_factor:.3f}"
        )
        for kind in report.kinds:
            ion_bw = max(
                (report.results[(rate, lb, kind)].bandwidth_mb
                 for lb in ion_labels),
                default=0.0,
            )
            cnl_bw = max(
                (report.results[(rate, lb, kind)].bandwidth_mb
                 for lb in cnl_labels),
                default=0.0,
            )
            gap = f"{cnl_bw / ion_bw:8.1f}x" if ion_bw > 0 else "     inf"
            lines.append(
                f"{rate:6g}  {delivered:>9}  {level:>5}  {retx:6d}  "
                f"{kind:<4}  {ion_bw:9.1f}  {cnl_bw:9.1f}  {gap}"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def netfault_exhibit(
    workload: Workload,
    engine,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    labels: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[str]] = None,
    net_seed: int = 0,
    mtu_bytes: int = 4096,
    seed: int = 1013,
    stats: Optional[NetStatsRecorder] = None,
) -> NetfaultReport:
    """Sweep loss rate x config x kind; returns the structured report.

    ``engine`` computes the healthy matrix (both backends, any worker
    count — bit-identical); degraded ION cells replay inline.
    """
    labels = tuple(labels) if labels else tuple(
        c.label for c in TABLE2_CONFIGS
    )
    kinds = tuple(kinds) if kinds else tuple(k.name for k in KINDS)
    loss_rates = tuple(sorted(set(float(r) for r in loss_rates)))
    for label in labels:
        config_by_label(label)  # raises on unknown labels up front
    report = NetfaultReport(
        workload=workload, loss_rates=loss_rates, labels=labels,
        kinds=kinds, net_seed=net_seed, mtu_bytes=mtu_bytes,
    )
    cells = [(label, kind) for label in labels for kind in kinds]
    healthy = engine.run_cells(cells, workload, seed, with_remaining=False)
    for rate in loss_rates:
        cal = calibrate_fabric(
            rate, net_seed=net_seed, mtu_bytes=mtu_bytes, stats=stats
        )
        report.calibrations[rate] = cal
        for label, kind in cells:
            if (
                rate == 0.0
                or config_by_label(label).location != "ION"
            ):
                report.results[(rate, label, kind)] = healthy[(label, kind)]
            else:
                report.results[(rate, label, kind)] = _degraded_ion_cell(
                    label, kind, workload, seed, cal.delivered_factor
                )
    report.text = _render(report)
    return report
