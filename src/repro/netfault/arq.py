"""Go-back-N ARQ schedule over a packetized wire.

:func:`compute_schedule` turns one bulk transfer into the exact
nanosecond schedule a go-back-N sender produces on a lossy wire: the
payload is framed into MTU packets, each packet attempt consumes wire
time, the loss oracle decides drops, a lost head discards the in-flight
window tail (which must be re-streamed), retransmits back off
exponentially, and a packet that exhausts its retransmission budget
raises the permanent :class:`~repro.faults.errors.LinkUnreachable`.

The function is **pure**: a deterministic map of ``(wire spec, netfault
spec, link name, transfer seq, nbytes, controller state)`` to a
:class:`TransferSchedule`.  The DES link calls it while holding the
wire and sleeps for ``schedule.wire_ns`` in one timeout, so packet
accounting never perturbs event ordering.

Bit-identity invariant (golden-tested): per-packet durations telescope
over cumulative byte boundaries —

    ``dur(k) = transfer_ns(cum_k) - transfer_ns(cum_{k-1})``

so at ``loss_rate == 0`` the packet durations sum to **exactly**
``transfer_ns(nbytes)``, the healthy bulk wire time, with no rounding
drift at any MTU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.errors import LinkUnreachable
from ..interconnect.links import LinkSpec
from .rate import AdaptiveRateController
from .spec import NetFaultSpec, PacketOracle

__all__ = ["PacketEvent", "TransferSchedule", "compute_schedule"]


@dataclass(frozen=True)
class PacketEvent:
    """One per-packet occurrence, at an offset into the wire phase."""

    t_ns: int  # start offset of the frame within the transfer
    dur_ns: int  # wire occupancy of the frame (0 for backoff rows)
    pkt_seq: int
    attempt: int
    event: str  # sent | delivered | lost | backoff | fallback | recovery
    size_bytes: int
    rate_level: str


@dataclass
class TransferSchedule:
    """The resolved timing + counters of one packetized transfer."""

    nbytes: int
    n_packets: int
    wire_ns: int  # total wire phase (excludes the per-request latency)
    packets_sent: int = 0
    packets_lost: int = 0
    retransmits: int = 0
    backoff_ns: int = 0
    wasted_ns: int = 0  # discarded in-flight window tails
    lost_frame_ns: int = 0  # wire time of the dropped frames themselves
    events: list[PacketEvent] = field(default_factory=list)

    @property
    def payload_ns(self) -> int:
        """Wire time that moved payload which was actually delivered."""
        return (
            self.wire_ns - self.wasted_ns - self.backoff_ns
            - self.lost_frame_ns
        )


def compute_schedule(
    wire: LinkSpec,
    nf: NetFaultSpec,
    oracle: PacketOracle,
    rate: AdaptiveRateController,
    link: str,
    transfer_seq: int,
    nbytes: int,
    record_events: bool = False,
) -> TransferSchedule:
    """Resolve one go-back-N transfer; raises LinkUnreachable on budget
    exhaustion (counters in the partial schedule are folded in by the
    caller before the raise propagates)."""
    mtu = nf.mtu_bytes
    n_packets = (nbytes + mtu - 1) // mtu
    cum = [min(k * mtu, nbytes) for k in range(n_packets + 1)]
    base = wire.transfer_ns
    sched = TransferSchedule(nbytes=nbytes, n_packets=n_packets, wire_ns=0)
    t = 0

    def emit(dur: int, pkt: int, attempt: int, event: str, size: int) -> None:
        if record_events:
            sched.events.append(
                PacketEvent(t, dur, pkt, attempt, event, size, rate.level_name)
            )

    for k in range(1, n_packets + 1):
        pkt = k - 1
        size = cum[k] - cum[k - 1]
        base_dur = base(cum[k]) - base(cum[k - 1])
        attempt = 0
        while True:
            dur = rate.stretch(base_dur)
            sched.packets_sent += 1
            emit(dur, pkt, attempt, "sent", size)
            dropped = oracle.lost(link, transfer_seq, pkt, attempt)
            t += dur
            move = rate.on_outcome(dropped)
            if not dropped:
                emit(0, pkt, attempt, "delivered", size)
                if move == "recovery":
                    emit(0, pkt, attempt, "recovery", 0)
                break
            sched.packets_lost += 1
            sched.lost_frame_ns += dur
            emit(0, pkt, attempt, "lost", size)
            if move == "fallback":
                emit(0, pkt, attempt, "fallback", 0)
            # go-back-N: the already-streamed window tail is discarded
            # and must be re-sent; charge its wire occupancy as waste
            inflight = min(nf.window_packets - 1, n_packets - k)
            if inflight:
                tail = rate.stretch(base(cum[k + inflight]) - base(cum[k]))
                t += tail
                sched.wasted_ns += tail
            attempt += 1
            if attempt > nf.max_retransmits:
                sched.wire_ns = t
                err = LinkUnreachable(
                    f"link {link}: packet {pkt} of transfer {transfer_seq} "
                    f"lost {attempt} times, exhausting the "
                    f"{nf.max_retransmits}-retransmit budget",
                    site=("netfault", link, transfer_seq, pkt),
                )
                err.schedule = sched  # partial counters for the caller
                raise err
            sched.retransmits += 1
            backoff = min(
                nf.backoff_cap_ns, nf.backoff_base_ns << (attempt - 1)
            )
            if backoff:
                emit(0, pkt, attempt, "backoff", 0)
                t += backoff
                sched.backoff_ns += backoff
    sched.wire_ns = t
    return sched
