"""The packetized DES link: go-back-N ARQ over a shared wire.

:class:`PacketLink` subclasses :class:`~repro.cluster.network.SharedLink`
and keeps its exact DES shape — acquire the wire, sleep one timeout,
release — but the timeout now comes from the resolved go-back-N
schedule (:func:`~repro.netfault.arq.compute_schedule`) instead of the
bulk ``request_ns``.  Consequences:

* **loss 0 is bit-identical to the healthy link**: the packet durations
  telescope to exactly ``transfer_ns(nbytes)``, the rate controller is
  a no-op at factor 1.0, and the event ordering (acquire → timeout →
  release, FIFO contention) is unchanged — so any simulation built on
  :class:`SharedLink` can swap in a ``loss_rate=0`` packet link without
  moving a single nanosecond (golden-tested);
* **composition**: an attached
  :class:`~repro.faults.cluster.LinkFaultModel` (flap / degradation
  overlay) still applies on top of the packetized duration, so both
  impairment layers can ride one link;
* **observability**: each transfer emits one sim root span tiled by
  ``request`` / ``payload`` / ``retransmit`` / ``backoff`` (/
  ``overlay``) children — 100% attribution coverage by construction —
  plus bounded per-loss detail spans, and per-packet rows stream to an
  optional :class:`~repro.netfault.stats.NetStatsRecorder`.  All span
  identities use stable ``site_key`` tuples (link name, per-link
  transfer sequence), never process-dependent values.

Clock-domain rule: every timestamp here is the DES clock; the link
never reads wall time, so schedules, spans and CSV rows are
deterministic across worker counts under a fixed seed.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..cluster.network import SharedLink
from ..faults.errors import LinkUnreachable
from ..interconnect.links import LinkSpec
from ..obs import trace as obs
from ..sim import Simulator
from .arq import TransferSchedule, compute_schedule
from .rate import AdaptiveRateController
from .spec import NetFaultSpec
from .stats import NetStatsRecorder

__all__ = ["PacketLink", "LOSS_SPAN_CAP"]

#: per-link cap on emitted per-loss detail spans (counters stay exact)
LOSS_SPAN_CAP = 256


class PacketLink(SharedLink):
    """A go-back-N ARQ link over MTU frames with rate fallback."""

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        netfault: NetFaultSpec,
        name: str = "",
        fault_model=None,
        stats: Optional[NetStatsRecorder] = None,
    ):
        super().__init__(sim, spec, name, fault_model)
        self.netfault = netfault
        self.oracle = netfault.oracle()
        self.rate = AdaptiveRateController(netfault)
        self.stats = stats
        self.packets_sent = 0
        self.packets_lost = 0
        self.retransmits = 0
        self.backoff_ns = 0
        self.wasted_ns = 0
        self.unreachable = 0
        self._loss_spans = 0

    # ------------------------------------------------------------------
    def _fold(self, sched: TransferSchedule) -> None:
        self.packets_sent += sched.packets_sent
        self.packets_lost += sched.packets_lost
        self.retransmits += sched.retransmits
        self.backoff_ns += sched.backoff_ns
        self.wasted_ns += sched.wasted_ns + sched.lost_frame_ns

    def _publish(self, sched: TransferSchedule, seq: int, start_ns: int,
                 total_ns: int, overlay_ns: int) -> None:
        """Emit the span tree + CSV rows for one resolved transfer."""
        tr = obs.tracer()
        wire_start = start_ns + self.spec.per_request_ns
        if self.stats is not None:
            for ev in sched.events:
                self.stats.on_packet(
                    wire_start + ev.t_ns, self.name, seq, ev.pkt_seq,
                    ev.attempt, ev.event, ev.size_bytes, ev.rate_level,
                )
        if tr is None:
            return
        end_ns = start_ns + total_ns
        root = tr.sim_span(
            "net", "transfer", start_ns, end_ns,
            site_key=("netfault", self.name, seq),
            link=self.name, nbytes=sched.nbytes, packets=sched.n_packets,
        )
        t = start_ns
        waste_site = ""
        parts = (
            ("request", self.spec.per_request_ns),
            ("payload", max(0, sched.payload_ns)),
            ("retransmit", sched.wasted_ns + sched.lost_frame_ns),
            ("backoff", sched.backoff_ns),
            ("overlay", overlay_ns),
        )
        for i, (part, dur) in enumerate(parts):
            if i == len(parts) - 1:
                dur = end_ns - t  # absorb rounding into the last child
            dur = max(0, min(dur, end_ns - t))
            if dur == 0:
                continue
            site = tr.sim_span(
                "net", part, t, t + dur, parent=root,
                site_key=("netfault", self.name, seq, part),
            )
            if part == "retransmit":
                waste_site = site
            t += dur
        if waste_site:
            for ev in sched.events:
                if ev.event != "lost" or self._loss_spans >= LOSS_SPAN_CAP:
                    continue
                self._loss_spans += 1
                t0 = wire_start + ev.t_ns
                tr.sim_span(
                    "net", "loss", t0, t0 + max(1, ev.dur_ns),
                    parent=waste_site,
                    site_key=(
                        "netfault", self.name, seq, "loss", ev.pkt_seq,
                        ev.attempt,
                    ),
                    pkt=ev.pkt_seq, attempt=ev.attempt,
                    rate_level=ev.rate_level,
                )

    # ------------------------------------------------------------------
    def transfer(self, nbytes: int) -> Generator:
        """(process fragment) Move ``nbytes`` through the ARQ machinery.

        Raises :class:`~repro.faults.errors.LinkUnreachable` (typed,
        never a hang) when a packet exhausts its retransmission budget
        or the link is closed / zero-capacity.
        """
        self._check_deliverable(nbytes)
        yield self._wire.acquire()
        try:
            self._check_deliverable(nbytes)
            seq = self.transfers
            record = self.stats is not None or obs.tracer() is not None
            try:
                sched = compute_schedule(
                    self.spec, self.netfault, self.oracle, self.rate,
                    self.name, seq, nbytes, record_events=record,
                )
            except LinkUnreachable as err:
                self.unreachable += 1
                partial = getattr(err, "schedule", None)
                if partial is not None:
                    self._fold(partial)
                raise
            self.transfers += 1
            self.bytes_moved += nbytes
            self._fold(sched)
            ns = self.spec.per_request_ns + sched.wire_ns
            overlay_ns = 0
            if self.fault_model is not None:
                overlay_ns = self.fault_model.transfer_overlay(nbytes, ns)
                ns += overlay_ns
            if record:
                self._publish(sched, seq, self.sim.now, ns, overlay_ns)
            yield self.sim.timeout(ns)
        finally:
            self._wire.release()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counter roll-up for ``MetricsRegistry.absorb()``."""
        snap = super().snapshot()
        snap.update(
            {
                "packets_sent": self.packets_sent,
                "packets_lost": self.packets_lost,
                "retransmits": self.retransmits,
                "backoff_ns": self.backoff_ns,
                "wasted_ns": self.wasted_ns,
                "unreachable": self.unreachable,
                "rate": self.rate.snapshot(),
            }
        )
        return snap
