"""Netfault regime description and the per-packet loss oracle.

A :class:`NetFaultSpec` freezes everything the packetized link needs to
decide: frame size, the seeded loss probability, the go-back-N window
and retransmission budget, backoff constants, and the adaptive
rate-fallback thresholds.  Like :class:`~repro.faults.plan.FaultSpec`
it is JSON-serialisable (:meth:`NetFaultSpec.signature`), picklable,
and a spec with ``loss_rate == 0`` injects nothing — the packet link is
then bit-identical to the healthy bulk wire (golden-tested).

The :class:`PacketOracle` is the decision function: every per-packet
loss verdict hashes ``(seed, link name, transfer seq, packet seq,
attempt)`` with BLAKE2b — the :mod:`repro.faults.plan` idiom — so two
runs with the same seed drop **identical** packets at identical sites
regardless of worker count, scheduling order, or wall-clock.  For a
fixed site the draw is shared across loss rates, so raising
``loss_rate`` only ever grows the set of initially-lost packets: the
saturating-loss sweep degrades monotonically by construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

__all__ = ["NetFaultSpec", "PacketOracle", "RATE_LEVELS"]

#: adaptive-rate ladder: InfiniBand signalling generations, expressed
#: as payload-bandwidth factors of the configured (QDR) link.  Step
#: down on sustained loss, probe back up on quiet periods.
RATE_LEVELS: tuple[tuple[str, float], ...] = (
    ("QDR", 1.0),
    ("DDR", 0.5),
    ("SDR", 0.25),
)


@dataclass(frozen=True)
class NetFaultSpec:
    """Frozen description of one lossy-fabric regime.

    ``loss_rate`` is the per-packet-attempt drop probability; all other
    fields shape the recovery machinery.  ``loss_rate == 0`` disables
    the whole overlay (``enabled`` is False) and the packet path must
    be bit-identical to the bulk wire.
    """

    seed: int = 0
    #: P(one packet attempt is dropped on the wire)
    loss_rate: float = 0.0
    #: frame payload size (IB MTU); a transfer is ceil(n/mtu) packets
    mtu_bytes: int = 4096
    #: go-back-N sender window: packets in flight past an unacked head
    window_packets: int = 16
    #: per-packet retransmission budget; exhausting it raises the
    #: permanent :class:`~repro.faults.errors.LinkUnreachable`
    max_retransmits: int = 8
    #: backoff before retransmit attempt ``a`` costs
    #: ``backoff_base_ns * 2**(a-1)``, capped at ``backoff_cap_ns``
    backoff_base_ns: int = 20_000
    backoff_cap_ns: int = 5_000_000
    #: rate fallback: step down one level when >= ``fallback_losses``
    #: losses land inside a sliding window of ``fallback_window``
    #: delivered-or-lost outcomes
    fallback_window: int = 32
    fallback_losses: int = 4
    #: recovery probe: step back up after this many consecutive clean
    #: deliveries (a quiet period)
    recovery_quiet_packets: int = 256

    def __post_init__(self):
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1], got {self.loss_rate!r}"
            )
        if self.mtu_bytes < 1:
            raise ValueError("mtu_bytes must be >= 1")
        if self.window_packets < 1:
            raise ValueError("window_packets must be >= 1")
        if self.max_retransmits < 1:
            raise ValueError("max_retransmits must be >= 1")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            raise ValueError("backoff constants must be >= 0")
        if self.fallback_window < 1 or self.fallback_losses < 1:
            raise ValueError("fallback window/losses must be >= 1")
        if self.recovery_quiet_packets < 1:
            raise ValueError("recovery_quiet_packets must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.loss_rate > 0.0

    def signature(self) -> dict:
        """JSON-safe identity for cache keys and wire payloads."""
        return dataclasses.asdict(self)

    def oracle(self) -> "PacketOracle":
        return PacketOracle(self)


class PacketOracle:
    """Deterministic per-packet loss oracle over a :class:`NetFaultSpec`.

    Stateless besides the spec: every verdict is a pure function of
    ``(seed, site)``, independent of call order and process boundaries
    — the :class:`~repro.faults.plan.FaultPlan` guarantee, specialised
    to packets.
    """

    def __init__(self, spec: NetFaultSpec):
        self.spec = spec
        self._prefix = f"repro.netfault:{spec.seed}:".encode()

    def uniform(self, *site) -> float:
        """Deterministic uniform [0, 1) draw for one decision site."""
        h = hashlib.blake2b(
            self._prefix + repr(site).encode(), digest_size=8
        ).digest()
        return int.from_bytes(h, "big") / 2.0**64

    def lost(self, link: str, transfer_seq: int, pkt_seq: int,
             attempt: int) -> bool:
        """Is this packet attempt dropped on the wire?"""
        rate = self.spec.loss_rate
        return rate > 0.0 and self.uniform(
            "pkt", link, transfer_seq, pkt_seq, attempt
        ) < rate
