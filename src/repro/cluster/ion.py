"""ION GPFS service co-simulation (Figure 2a, from first principles).

The experiment harness models the CN-to-ION path analytically
(:func:`repro.interconnect.network_path`).  This module builds the same
path out of DES processes — compute-node clients issuing GPFS RPCs, a
shared InfiniBand port, NSD service threads, and the ION's SSD served
at its pattern rate — so the analytic calibration can be checked
against an explicit queueing simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interconnect.links import INFINIBAND_QDR_4X, LinkSpec
from ..sim import Resource, Simulator
from .network import SharedLink

__all__ = ["IonServiceConfig", "IonServiceReport", "simulate_ion_service"]

KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class IonServiceConfig:
    """Shape of one ION serving OoC compute nodes over GPFS."""

    clients: int = 2
    bytes_per_client: int = 64 * MiB
    rpc_bytes: int = 128 * KiB  # GPFS sub-block service unit
    rpc_overhead_ns: int = 60_000  # client+server software stack per RPC
    nsd_threads: int = 8  # concurrent service threads per ION
    ssd_bytes_per_sec: float = 2.2e9  # device rate under the GPFS pattern
    link: LinkSpec = INFINIBAND_QDR_4X
    #: payload efficiency of the GPFS transport on the wire (IPoIB /
    #: verbs framing beyond the link's own packetization)
    transport_efficiency: float = 0.50
    client_window: int = 16  # outstanding RPCs per client (prefetch)


@dataclass
class IonServiceReport:
    """Outcome of the co-simulation."""

    per_client_bytes_per_sec: dict[int, float] = field(default_factory=dict)
    aggregate_bytes_per_sec: float = 0.0
    link_utilization: float = 0.0
    makespan_ns: int = 0

    @property
    def per_client_mb(self) -> float:
        if not self.per_client_bytes_per_sec:
            return 0.0
        vals = list(self.per_client_bytes_per_sec.values())
        return sum(vals) / len(vals) / 1e6


def simulate_ion_service(cfg: IonServiceConfig = IonServiceConfig()) -> IonServiceReport:
    """Run the CN<->ION request/response pipeline to completion."""
    if cfg.clients < 1 or cfg.bytes_per_client < cfg.rpc_bytes:
        raise ValueError("need at least one client and one RPC of data")
    sim = Simulator()
    # scale the wire to the transport's payload efficiency
    import dataclasses

    wire_spec = dataclasses.replace(
        cfg.link,
        packet_efficiency=cfg.link.packet_efficiency * cfg.transport_efficiency,
    )
    port = SharedLink(sim, wire_spec, name="ib-port")
    nsd = Resource(sim, capacity=cfg.nsd_threads, name="nsd-threads")
    ssd = Resource(sim, capacity=1, name="ion-ssd")
    ssd_ns_per_rpc = int(cfg.rpc_bytes * 1e9 / cfg.ssd_bytes_per_sec)
    finish: dict[int, int] = {}

    def rpc(client: int):
        """One GPFS read RPC: request -> service thread -> SSD -> reply."""
        yield sim.timeout(cfg.rpc_overhead_ns)
        yield nsd.acquire()
        try:
            yield ssd.acquire()
            try:
                yield sim.timeout(ssd_ns_per_rpc)
            finally:
                ssd.release()
            yield from port.transfer(cfg.rpc_bytes)
        finally:
            nsd.release()

    def client_proc(client: int):
        n_rpcs = cfg.bytes_per_client // cfg.rpc_bytes
        outstanding = []
        for _i in range(n_rpcs):
            while len(outstanding) >= cfg.client_window:
                done = outstanding.pop(0)
                if not done.triggered:
                    yield done
            outstanding.append(sim.process(rpc(client)))
        for p in outstanding:
            if not p.triggered:
                yield p
        finish[client] = sim.now

    for c in range(cfg.clients):
        sim.process(client_proc(c))
    end = sim.run()

    report = IonServiceReport(makespan_ns=end)
    for c, t in finish.items():
        report.per_client_bytes_per_sec[c] = (
            cfg.bytes_per_client * 1e9 / t if t > 0 else 0.0
        )
    report.aggregate_bytes_per_sec = (
        cfg.clients * cfg.bytes_per_client * 1e9 / end if end > 0 else 0.0
    )
    report.link_utilization = port.utilization(end)
    return report
