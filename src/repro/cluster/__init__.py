"""Cluster models: Carver topology, DES links, pre-staging engine."""

from .carver import ClusterSpec, carver, carver_ooc_partition
from .distributed import DistributedMemoryDesign, OocNvmDesign, SolverKernel
from .ion import IonServiceConfig, IonServiceReport, simulate_ion_service
from .network import SharedLink
from .nodes import ComputeNode, DiskArray, IONode
from .preload import PreloadReport, simulate_preload

__all__ = [
    "ClusterSpec",
    "DistributedMemoryDesign",
    "OocNvmDesign",
    "SolverKernel",
    "carver",
    "carver_ooc_partition",
    "SharedLink",
    "IonServiceConfig",
    "IonServiceReport",
    "simulate_ion_service",
    "ComputeNode",
    "IONode",
    "DiskArray",
    "PreloadReport",
    "simulate_preload",
]
