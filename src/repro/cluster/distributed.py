"""Distributed-memory vs out-of-core NVM solve-time models (Section 1).

The paper's motivation: "The traditional solution ... is to utilize
shared, distributed memories across the cluster ... a cluster with an
aggregate amount of memory large enough to bring the entire dataset in
at the start", which is expensive in capital and energy and "place[s]
hard limits on the size of H".  The NVM alternative keeps a small
number of nodes and streams H from storage each iteration.

These models estimate per-iteration time of the LOBPCG kernel under
both designs:

* **distributed memory** — H partitioned across node DRAM; each
  iteration does a local SpMM plus the communication-intensive part
  (Psi allgather + reduction traffic over the fabric),
* **out-of-core NVM** — fewer nodes; each iteration streams the local
  H partition from storage (ION-remote or compute-local NVM) and
  overlaps it with the same local SpMM.

They are deliberately first-order (bandwidth/latency/flop-rate terms
only) — enough to reproduce the crossovers the introduction argues
from, not a cycle-accurate cluster simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from ..interconnect.links import INFINIBAND_QDR_4X, LinkSpec

__all__ = ["SolverKernel", "DistributedMemoryDesign", "OocNvmDesign"]

GiB = 1 << 30


@dataclass(frozen=True)
class SolverKernel:
    """Shape of one LOBPCG iteration over a stored Hamiltonian."""

    h_bytes: int  # serialized sparse H
    n: int  # dimension
    block_cols: int = 10  # Psi width (paper: "about 10-20 columns")
    flops_per_h_byte: float = 0.17  # ~2 flops per (value+index) byte per col

    @property
    def spmm_flops(self) -> float:
        return self.h_bytes * self.flops_per_h_byte * self.block_cols

    @property
    def psi_bytes(self) -> int:
        return self.n * self.block_cols * 8


@dataclass(frozen=True)
class DistributedMemoryDesign:
    """H in aggregate DRAM across ``nodes`` nodes."""

    nodes: int
    mem_per_node_bytes: int = 24 * GiB
    flops_per_node: float = 8 * 10.4e9  # 8 cores x ~10.4 GFLOP/s (Carver era)
    fabric: LinkSpec = INFINIBAND_QDR_4X
    #: fraction of memory usable for H (OS, Psi, buffers take the rest)
    usable_mem_fraction: float = 0.7

    def feasible(self, kernel: SolverKernel) -> bool:
        """Does H fit in aggregate usable memory? (the 'hard limit')"""
        usable = self.nodes * self.mem_per_node_bytes * self.usable_mem_fraction
        return kernel.h_bytes <= usable

    def min_nodes(self, kernel: SolverKernel) -> int:
        """Nodes needed just to *hold* H in memory."""
        per_node = self.mem_per_node_bytes * self.usable_mem_fraction
        return max(1, math.ceil(kernel.h_bytes / per_node))

    def iteration_ns(self, kernel: SolverKernel) -> float:
        """One SpMM sweep: parallel compute + Psi allgather."""
        if not self.feasible(kernel):
            # infeasible configs cost "forever"; inf is unitless by design
            return math.inf  # repro: noqa[UNIT004]
        compute = kernel.spmm_flops / (self.nodes * self.flops_per_node) * 1e9
        # ring allgather of the distributed Psi block: every node
        # receives the whole Psi once per iteration
        bw = self.fabric.effective_bytes_per_sec
        comm = kernel.psi_bytes * 1e9 / bw + 2 * self.fabric.per_request_ns * max(
            1, self.nodes - 1
        )
        return compute + comm


@dataclass(frozen=True)
class OocNvmDesign:
    """H streamed from storage each iteration on ``nodes`` nodes."""

    nodes: int
    storage_bytes_per_sec: float  # per-node streaming rate of H panels
    flops_per_node: float = 8 * 10.4e9
    fabric: LinkSpec = INFINIBAND_QDR_4X
    overlap: float = 1.0  # I/O-compute overlap (DOoC pipelines fully)

    def iteration_ns(self, kernel: SolverKernel) -> float:
        """One sweep: max(stream H partition, compute) + Psi allgather."""
        io = kernel.h_bytes / self.nodes / self.storage_bytes_per_sec * 1e9
        compute = kernel.spmm_flops / (self.nodes * self.flops_per_node) * 1e9
        bw = self.fabric.effective_bytes_per_sec
        comm = kernel.psi_bytes * 1e9 / bw + 2 * self.fabric.per_request_ns * max(
            1, self.nodes - 1
        )
        if self.overlap >= 1.0:
            body = max(io, compute)
        else:
            body = max(io, compute) + (1.0 - self.overlap) * min(io, compute)
        return body + comm

    def io_bound(self, kernel: SolverKernel) -> bool:
        io = kernel.h_bytes / self.nodes / self.storage_bytes_per_sec * 1e9
        compute = kernel.spmm_flops / (self.nodes * self.flops_per_node) * 1e9
        return io > compute
