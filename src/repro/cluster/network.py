"""DES network links for cluster-level simulation.

A :class:`SharedLink` serializes message payloads at the link's
effective bandwidth (from :mod:`repro.interconnect`) with per-message
latency; concurrent senders contend FIFO, which is how the ION's QDR
port divides between its compute nodes.
"""

from __future__ import annotations

from typing import Generator

from ..interconnect.links import LinkSpec
from ..sim import Resource, Simulator

__all__ = ["SharedLink"]


class SharedLink:
    """A full-duplex link shared by many DES processes."""

    def __init__(self, sim: Simulator, spec: LinkSpec, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self._wire = Resource(sim, capacity=1, name=self.name)
        self.bytes_moved = 0

    def transfer(self, nbytes: int) -> Generator:
        """(process fragment) Move ``nbytes``; yields until delivered."""
        if nbytes < 0:
            raise ValueError("negative transfer")
        yield self._wire.acquire()
        try:
            self.bytes_moved += nbytes
            yield self.sim.timeout(self.spec.request_ns(nbytes))
        finally:
            self._wire.release()

    @property
    def busy_ns(self) -> int:
        """Total time the wire has been held."""
        total = sum(e - s for s, e in self._wire.busy_intervals)
        if self._wire._busy_since is not None:
            total += self.sim.now - self._wire._busy_since
        return total

    def utilization(self, now: int | None = None) -> float:
        t = self.sim.now if now is None else now
        return self.busy_ns / t if t > 0 else 0.0
