"""DES network links for cluster-level simulation.

A :class:`SharedLink` serializes message payloads at the link's
effective bandwidth (from :mod:`repro.interconnect`) with per-message
latency; concurrent senders contend FIFO, which is how the ION's QDR
port divides between its compute nodes.

Fault injection attaches a
:class:`~repro.faults.cluster.LinkFaultModel` (seeded, deterministic):
flapped transfers stall for the retrain time, degraded fabrics stretch
wire time — letting ION-vs-CNL comparisons run under lossy fabrics.
Without a model the timing is bit-identical to the healthy link.

A link that cannot deliver — administratively :meth:`~SharedLink.close`\\ d,
or built from a spec with zero payload capacity — raises a typed
:class:`~repro.faults.errors.LinkUnreachable` instead of scheduling a
timeout that never fires: a DES process parked on an undeliverable
transfer would hang the whole simulation with no diagnostic.

:mod:`repro.netfault` subclasses this into a packetized ARQ link;
:meth:`snapshot` is the common counter surface both feed into
``MetricsRegistry.absorb()``.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..faults.errors import LinkUnreachable
from ..interconnect.links import LinkSpec
from ..sim import Resource, Simulator

__all__ = ["SharedLink"]


class SharedLink:
    """A full-duplex link shared by many DES processes."""

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        name: str = "",
        fault_model=None,
    ):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self._wire = Resource(sim, capacity=1, name=self.name)
        self.bytes_moved = 0
        self.transfers = 0
        self._closed = False
        #: optional :class:`~repro.faults.cluster.LinkFaultModel`
        self.fault_model = fault_model

    def attach_faults(self, model) -> None:
        """Overlay a link fault model onto subsequent transfers."""
        self.fault_model = model

    def close(self) -> None:
        """Administratively down the link; transfers then raise
        :class:`~repro.faults.errors.LinkUnreachable`."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_deliverable(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative transfer")
        if self._closed:
            raise LinkUnreachable(
                f"link {self.name} is closed", site=("link", self.name)
            )
        if nbytes > 0 and self.spec.effective_bytes_per_sec <= 0.0:
            raise LinkUnreachable(
                f"link {self.name} has zero payload capacity "
                f"({self.spec.name}); a transfer would never complete",
                site=("link", self.name),
            )

    def transfer(self, nbytes: int) -> Generator:
        """(process fragment) Move ``nbytes``; yields until delivered."""
        self._check_deliverable(nbytes)
        yield self._wire.acquire()
        try:
            self._check_deliverable(nbytes)  # may have closed while queued
            self.bytes_moved += nbytes
            self.transfers += 1
            ns = self.spec.request_ns(nbytes)
            if self.fault_model is not None:
                ns += self.fault_model.transfer_overlay(nbytes, ns)
            yield self.sim.timeout(ns)
        finally:
            self._wire.release()

    @property
    def fault_stats(self) -> Optional[dict]:
        """Injected-fault roll-up, or ``None`` without a model."""
        return (
            self.fault_model.snapshot() if self.fault_model is not None else None
        )

    def snapshot(self) -> dict:
        """JSON-safe counter roll-up for ``MetricsRegistry.absorb()``."""
        snap = {
            "link": self.name,
            "transfers": self.transfers,
            "bytes_moved": self.bytes_moved,
            "busy_ns": self.busy_ns,
            "closed": self._closed,
        }
        if self.fault_model is not None:
            faults = self.fault_model.snapshot()
            faults.pop("events", None)  # counters only: absorb() wants scalars
            snap["faults"] = faults
        return snap

    @property
    def busy_ns(self) -> int:
        """Total time the wire has been held."""
        total_ns = sum(e - s for s, e in self._wire.busy_intervals)
        if self._wire._busy_since is not None:
            total_ns += self.sim.now - self._wire._busy_since
        return total_ns

    def utilization(self, now: int | None = None) -> float:
        t = self.sim.now if now is None else now
        return self.busy_ns / t if t > 0 else 0.0
