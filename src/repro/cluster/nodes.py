"""Cluster node descriptions (Figure 3's component inventory)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..interconnect.links import FIBRE_CHANNEL_8G, LinkSpec
from ..nvm.kinds import NVMKind

__all__ = ["ComputeNode", "IONode", "DiskArray"]

GiB = 1 << 30


@dataclass(frozen=True)
class DiskArray:
    """A Fibre-Channel-attached RAID enclosure on an ION."""

    disks: int = 8
    disk_bw_bytes: int = 120 * 1024 * 1024  # sustained per spindle
    raid_efficiency: float = 0.8
    link: LinkSpec = FIBRE_CHANNEL_8G

    @property
    def bytes_per_sec(self) -> float:
        raw = self.disks * self.disk_bw_bytes * self.raid_efficiency
        return min(raw, self.link.effective_bytes_per_sec)


@dataclass
class ComputeNode:
    """A compute node: cores, memory, and (in the CNL design) a local SSD."""

    node_id: int
    cores: int = 8
    memory_bytes: int = 24 * GiB
    local_nvm: Optional[NVMKind] = None  # None = diskless (Fig. 2a style)

    @property
    def diskless(self) -> bool:
        return self.local_nvm is None


@dataclass
class IONode:
    """An I/O node: GPFS server, PCIe SSDs and FC-attached disks."""

    node_id: int
    cores: int = 4
    ssds: int = 2
    ssd_kind: Optional[NVMKind] = None
    disk_arrays: tuple[DiskArray, ...] = field(default_factory=lambda: (DiskArray(),))

    @property
    def disk_bytes_per_sec(self) -> float:
        return sum(d.bytes_per_sec for d in self.disk_arrays)
