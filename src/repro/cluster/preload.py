"""Pre-staging engine: magnetic storage -> compute-local NVM.

Section 3.1: "All required data should be able to be pre-loaded from
network-attached magnetic storage to the compute-local SSDs prior to
beginning the computation, moving that I/O out of the critical path...
Such data migration can of course be overlapped with previous
application execution times to hide the pre-loading duration."

The DES model moves each compute node's partition from the ION disk
arrays across the shared fabric while a previous job occupies the
node, and reports how much of the pre-load was hidden.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Simulator
from .carver import ClusterSpec
from .network import SharedLink

__all__ = ["PreloadReport", "simulate_preload"]

CHUNK = 64 * 1024 * 1024  # pre-load transfer granularity


@dataclass
class PreloadReport:
    """Outcome of a cluster pre-load simulation."""

    bytes_per_cn: int
    n_cns: int
    preload_end_ns: int
    previous_job_ns: int
    exposed_ns: int  # pre-load time not hidden behind the previous job
    fabric_utilization: float

    @property
    def hidden_fraction(self) -> float:
        if self.preload_end_ns <= 0:
            return 1.0
        return 1.0 - self.exposed_ns / self.preload_end_ns


def simulate_preload(
    cluster: ClusterSpec,
    bytes_per_cn: int,
    previous_job_ns: int = 0,
    write_bytes_per_sec: float | None = None,
) -> PreloadReport:
    """Pre-load every CN's partition from the ION disks.

    Each ION serves its share of CNs over one fabric port; the per-CN
    stream is bounded by the ION disk arrays, the fabric share, and the
    local SSD's write rate (``write_bytes_per_sec``; defaults to half
    of a bridged PCIe2 x8 device, programs being slower than reads).
    """
    if bytes_per_cn <= 0:
        raise ValueError("bytes_per_cn must be positive")
    n_ions = max(1, len(cluster.io_nodes))
    cns = cluster.compute_nodes
    if write_bytes_per_sec is None:
        write_bytes_per_sec = 1.6e9

    sim = Simulator()
    ion_links = [
        SharedLink(sim, cluster.fabric, name=f"ion{i}-port") for i in range(n_ions)
    ]
    disk_rate = [io.disk_bytes_per_sec for io in cluster.io_nodes] or [1e9]

    def preload_cn(cn_idx: int):
        ion = cn_idx % n_ions
        link = ion_links[ion]
        remaining = bytes_per_cn
        while remaining > 0:
            chunk = min(CHUNK, remaining)
            # read from the RAID, then cross the fabric, then program NVM
            yield sim.timeout(int(chunk * 1e9 / disk_rate[ion % len(disk_rate)]))
            yield from link.transfer(chunk)
            yield sim.timeout(int(chunk * 1e9 / write_bytes_per_sec))
            remaining -= chunk

    for i in range(len(cns)):
        sim.process(preload_cn(i), name=f"preload-cn{i}")
    end = sim.run()
    exposed = max(0, end - previous_job_ns)
    util = (
        sum(l.busy_ns for l in ion_links) / (len(ion_links) * end) if end else 0.0
    )
    return PreloadReport(
        bytes_per_cn=bytes_per_cn,
        n_cns=len(cns),
        preload_end_ns=end,
        previous_job_ns=previous_job_ns,
        exposed_ns=exposed,
        fabric_utilization=util,
    )
