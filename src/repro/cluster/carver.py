"""The Carver cluster (Figure 3) and its OoC partition.

Carver, at LBNL's Computational Research Division: 1202 compute nodes
(9984 cores) on QDR 4X InfiniBand (4 GB/s), with 10 I/O nodes (48
cores) carrying 20 PCIe SSDs; 40 CNs and 320 cores are dedicated to
out-of-core computation alongside those IONs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interconnect.links import INFINIBAND_QDR_4X, LinkSpec
from ..nvm.kinds import MLC, NVMKind
from .nodes import ComputeNode, IONode

__all__ = ["ClusterSpec", "carver", "carver_ooc_partition"]


@dataclass
class ClusterSpec:
    """A cluster: nodes, fabric, and derived topology facts."""

    name: str
    compute_nodes: list[ComputeNode] = field(default_factory=list)
    io_nodes: list[IONode] = field(default_factory=list)
    fabric: LinkSpec = INFINIBAND_QDR_4X

    @property
    def total_cores(self) -> int:
        return sum(cn.cores for cn in self.compute_nodes) + sum(
            io.cores for io in self.io_nodes
        )

    @property
    def total_ssds(self) -> int:
        return sum(io.ssds for io in self.io_nodes) + sum(
            0 if cn.diskless else 1 for cn in self.compute_nodes
        )

    @property
    def cns_per_ion_ssd(self) -> float:
        ssds = sum(io.ssds for io in self.io_nodes)
        return len(self.compute_nodes) / ssds if ssds else float("inf")


def carver() -> ClusterSpec:
    """The full Carver system of Figure 3 (1202 CNs / 10 IONs)."""
    cns = [ComputeNode(node_id=i, cores=8) for i in range(1202)]
    # 9984 cores total: 1202*8 = 9616 compute + 10 ION nodes hold the rest
    ions = [IONode(node_id=i, cores=4, ssds=2, ssd_kind=MLC) for i in range(10)]
    return ClusterSpec(name="carver", compute_nodes=cns, io_nodes=ions)


def carver_ooc_partition(local_nvm: NVMKind | None = None) -> ClusterSpec:
    """The OoC partition: 40 CNs (320 cores), 10 IONs, 20 PCIe SSDs.

    Pass ``local_nvm`` to model the paper's migration of the SSDs into
    the compute nodes (Figure 2b): each CN gains a local device and the
    IONs keep only their magnetic storage for pre-staging.
    """
    cns = [
        ComputeNode(node_id=i, cores=8, local_nvm=local_nvm) for i in range(40)
    ]
    ions = [
        IONode(
            node_id=i,
            cores=4,
            ssds=0 if local_nvm is not None else 2,
            ssd_kind=None if local_nvm is not None else MLC,
        )
        for i in range(10)
    ]
    return ClusterSpec(name="carver-ooc", compute_nodes=cns, io_nodes=ions)
