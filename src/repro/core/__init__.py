"""The paper's primary contribution: UFS + compute-local NVM glue."""

from .architecture import StoragePath, make_cnl_device, make_ion_device
from .cache import CachedRunResult, CacheStats, NvmBlockCache, simulate_cached_run
from .ufs import UfsObject, UnifiedFileSystem, superpage_bytes

__all__ = [
    "UnifiedFileSystem",
    "UfsObject",
    "superpage_bytes",
    "StoragePath",
    "make_cnl_device",
    "make_ion_device",
    "NvmBlockCache",
    "CacheStats",
    "CachedRunResult",
    "simulate_cached_run",
]
