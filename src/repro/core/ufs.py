"""The Unified File System (UFS) — the paper's software contribution.

Section 3.2: UFS "can be seen to both replace existing file systems but
also, and more importantly, the underlying FTL of the SSD.  UFS
provides direct, application-managed access to the NVM media, in terms
of raw device addresses rather than human-readable filenames or
specialized file-system semantics."

Concretely, the model here:

* exposes a raw **extent namespace**: the application (or the DOoC
  middleware on its behalf) allocates objects and addresses them by
  ``(object, offset)``; there are no directories, inodes or journals,
* performs **superpage-aligned allocation**: every object starts on a
  full device stripe (all planes x channels x dies x packages), so a
  large request always climbs to PAL4 parallelism,
* issues **unsplit requests**: the POSIX-sized request travels to the
  device whole, letting the controller "fully parallelize these larger
  requests over the many flash channels, packages, and dies",
* keeps **no kernel read-ahead window** — the application manages its
  own pipelining (DOoC's prefetch depth), and
* hoists the FTL to the host (Fusion-IO-style, ref. [32] in the
  paper): the device-side per-command firmware overhead disappears and
  the host FTL maps extents 1:1 onto the striped physical layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..fs.base import FileLayout, FileSystemModel, FsParams
from ..ssd.geometry import Geometry
from ..ssd.request import CommandGroup, DeviceCommand, PosixRequest

__all__ = ["UnifiedFileSystem", "UfsObject", "superpage_bytes"]


def superpage_bytes(geom: Geometry) -> int:
    """One full device stripe: every plane of every die gets one page."""
    return geom.plane_units * geom.page_bytes


@dataclass(frozen=True)
class UfsObject:
    """A raw allocated extent in the UFS namespace."""

    object_id: int
    name: str
    lba: int
    nbytes: int


class UnifiedFileSystem(FileSystemModel):
    """Application-managed raw-extent storage (no FS, host-level FTL).

    Implements the :class:`FileSystemModel` interface so the replay and
    experiment harnesses treat it uniformly, but the translation is the
    identity: one POSIX request becomes one device command on a
    superpage-aligned extent, with no journal or metadata traffic and
    no read-ahead window.
    """

    def __init__(self, geom: Geometry, seed: int = 1013):
        params = FsParams(
            name="UFS",
            block_bytes=4096,
            max_request_bytes=1 << 40,  # never split
            readahead_bytes=1 << 40,  # application-managed (unbounded)
            alloc_run_bytes=1 << 40,
            alloc_gap_blocks=0,
            journaling=None,
            metadata_read_interval_bytes=1 << 60,
            seed=seed,
        )
        super().__init__(params)
        self.geom = geom
        self._align = superpage_bytes(geom)
        self._objects: dict[int, UfsObject] = {}
        self._by_name: dict[str, UfsObject] = {}
        self._cursor_bytes = 0

    # -- namespace API (used directly by DOoC) --------------------------
    def allocate(self, name: str, nbytes: int, object_id: Optional[int] = None) -> UfsObject:
        """Allocate a superpage-aligned raw extent."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        if name in self._by_name:
            raise ValueError(f"object {name!r} already exists")
        oid = object_id if object_id is not None else len(self._objects)
        if oid in self._objects:
            raise ValueError(f"object id {oid} already exists")
        obj = UfsObject(oid, name, self._cursor_bytes, nbytes)
        self._cursor_bytes += -(-nbytes // self._align) * self._align
        self._objects[oid] = obj
        self._by_name[name] = obj
        return obj

    def lookup_object(self, name: str) -> UfsObject:
        return self._by_name[name]

    @property
    def allocated_bytes(self) -> int:
        return self._cursor_bytes

    # -- FileSystemModel interface ---------------------------------------
    @property
    def readahead_bytes(self) -> Optional[int]:
        """UFS imposes no kernel window — the application pipelines."""
        return None

    def format(self, file_sizes: dict[int, int]) -> FileLayout:
        """Allocate one object per file id (compatibility shim)."""
        for fid in sorted(file_sizes):
            if fid not in self._objects:
                self.allocate(f"file-{fid}", file_sizes[fid], object_id=fid)
        # a FileLayout is still produced so shared tooling can inspect
        # zones, but UFS translation never consults its extents
        self._layout = FileLayout(self.params, file_sizes)
        return self._layout

    def translate(self, req: PosixRequest, client: int = 0) -> CommandGroup:
        obj = self._objects.get(req.file_id)
        if obj is None:
            raise KeyError(f"UFS object {req.file_id} not allocated")
        if req.offset + req.nbytes > obj.nbytes:
            raise ValueError("request beyond object extent")
        cmd = DeviceCommand(
            op=req.op,
            lba=obj.lba + req.offset,
            nbytes=req.nbytes,
            kind="data",
        )
        return CommandGroup(posix=req, commands=[cmd], client=client)
