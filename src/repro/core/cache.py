"""Cache-managed compute-local NVM — the design the paper argues against.

Section 1: prior compute-local NVM work (FlashTier, Mercury; the
paper's refs [25, 28, 29]) "solely consider the local NVM as a large
and algorithmically-managed cache ... these cache solutions may take
many hours or even days to 'heat up', which will nullify any benefits
distributed OoC applications could reap from them.  [F]or a
general-purpose caching layer to work properly, the fundamental
expectation that data is accessed more than once in a constrained
window of time must hold true, which is often not the case ... the act
of caching and evicting the data itself may very well slow down the
execution."

This module provides a faithful block-granular NVM cache model plus a
simulator that runs the OoC trace through it against remote (ION)
backing storage, so the argument can be made quantitatively and
compared with the paper's application-managed pre-load (UFS).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..interconnect.host import HostPath
from ..trace.posix import PosixTrace

__all__ = ["CacheStats", "NvmBlockCache", "CachedRunResult", "simulate_cached_run"]

MiB = 1024 * 1024


@dataclass
class CacheStats:
    """Byte-level cache accounting."""

    hit_bytes: int = 0
    miss_bytes: int = 0
    fill_bytes: int = 0
    evicted_bytes: int = 0
    write_through_bytes: int = 0

    @property
    def accessed_bytes(self) -> int:
        return self.hit_bytes + self.miss_bytes

    @property
    def hit_rate(self) -> float:
        total = self.accessed_bytes
        return self.hit_bytes / total if total else 0.0


class NvmBlockCache:
    """An LRU block cache over a compute-local NVM device.

    ``capacity_bytes`` of NVM front remote storage in ``block_bytes``
    units.  Reads of resident blocks hit; misses fill the block (read
    amplification up to one block per miss).  Writes allocate/dirty
    blocks (write-back) or additionally pass through (write-through).
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_bytes: int = 1 * MiB,
        write_policy: str = "write-back",
    ):
        if capacity_bytes < block_bytes:
            raise ValueError("capacity smaller than one block")
        if write_policy not in ("write-back", "write-through"):
            raise ValueError(f"unknown write policy {write_policy!r}")
        self.capacity_blocks = capacity_bytes // block_bytes
        self.block_bytes = block_bytes
        self.write_policy = write_policy
        self.stats = CacheStats()
        self._lru: "OrderedDict[tuple[int, int], bool]" = OrderedDict()  # key->dirty

    def _blocks(self, file_id: int, offset: int, nbytes: int):
        bb = self.block_bytes
        first = offset // bb
        last = (offset + nbytes - 1) // bb
        for b in range(first, last + 1):
            lo = max(offset, b * bb)
            hi = min(offset + nbytes, (b + 1) * bb)
            yield (file_id, b), hi - lo

    def _touch(self, key: tuple[int, int], dirty: bool) -> int:
        """Insert/refresh a block; returns evicted dirty bytes."""
        evicted_dirty = 0
        if key in self._lru:
            self._lru[key] = self._lru[key] or dirty
            self._lru.move_to_end(key)
            return 0
        while len(self._lru) >= self.capacity_blocks:
            _old, was_dirty = self._lru.popitem(last=False)
            self.stats.evicted_bytes += self.block_bytes
            if was_dirty:
                evicted_dirty += self.block_bytes
        self._lru[key] = dirty
        return evicted_dirty

    def read(self, file_id: int, offset: int, nbytes: int) -> tuple[int, int, int]:
        """Returns (hit_bytes, miss_bytes, fill_bytes)."""
        hit = miss = fill = 0
        for key, span in self._blocks(file_id, offset, nbytes):
            if key in self._lru:
                self._lru.move_to_end(key)
                hit += span
            else:
                miss += span
                fill += self.block_bytes  # whole-block fill
                self._touch(key, dirty=False)
        self.stats.hit_bytes += hit
        self.stats.miss_bytes += miss
        self.stats.fill_bytes += fill
        return hit, miss, fill

    def write(self, file_id: int, offset: int, nbytes: int) -> tuple[int, int]:
        """Returns (local_bytes, remote_bytes) to be written."""
        remote = 0
        for key, span in self._blocks(file_id, offset, nbytes):
            dirty_evicted = self._touch(key, dirty=(self.write_policy == "write-back"))
            remote += dirty_evicted
        if self.write_policy == "write-through":
            remote += nbytes
            self.stats.write_through_bytes += nbytes
        return nbytes, remote

    @property
    def resident_blocks(self) -> int:
        return len(self._lru)

    def warm_fraction(self, working_set_bytes: int) -> float:
        """Resident fraction of a working set of the given size."""
        resident = self.resident_blocks * self.block_bytes
        return min(1.0, resident / working_set_bytes) if working_set_bytes else 1.0


@dataclass
class CachedRunResult:
    """Timing of an OoC trace run through a cache-managed local NVM."""

    stats: CacheStats
    elapsed_ns: int
    local_io_ns: int
    remote_io_ns: int
    warmup_ns: int  # time until the first window with >90% hit rate
    warmed_up: bool
    bandwidth_mb: float = field(init=False)
    total_bytes: int = 0

    def __post_init__(self):
        self.bandwidth_mb = (
            self.total_bytes * 1e9 / self.elapsed_ns / 1e6 if self.elapsed_ns else 0.0
        )


def simulate_cached_run(
    trace: PosixTrace,
    cache: NvmBlockCache,
    local_bytes_per_sec: float,
    remote: HostPath,
    warm_window: int = 32,
) -> CachedRunResult:
    """Run a POSIX trace through the cache over remote backing storage.

    Hits move at the local NVM rate; misses pay the remote path for the
    *whole block fill* (the "act of caching ... itself may very well
    slow down the execution"), then the local rate.  The warm-up time
    is when a sliding window of requests first exceeds 90 % hits.
    """
    t = 0
    local_ns = remote_ns = 0
    warmup_ns = 0
    warmed = False
    window: list[float] = []
    for req in trace:
        if req.op == "read":
            hit, miss, fill = cache.read(req.file_id, req.offset, req.nbytes)
            dt_remote = remote.per_request_ns + int(
                fill * 1e9 / remote.per_client_bytes_per_sec
            ) if fill else 0
            dt_local = int(req.nbytes * 1e9 / local_bytes_per_sec)
            window.append(hit / max(1, hit + miss))
        else:
            local, rem = cache.write(req.file_id, req.offset, req.nbytes)
            dt_remote = (
                remote.per_request_ns
                + int(rem * 1e9 / remote.per_client_bytes_per_sec)
                if rem
                else 0
            )
            dt_local = int(local * 1e9 / local_bytes_per_sec)
            window.append(1.0)
        t += dt_local + dt_remote
        local_ns += dt_local
        remote_ns += dt_remote
        if not warmed:
            if len(window) > warm_window:
                window.pop(0)
            if len(window) == warm_window and sum(window) / warm_window > 0.9:
                warmed = True
                warmup_ns = t
    if not warmed:
        warmup_ns = t  # never heated up within the run
    return CachedRunResult(
        stats=cache.stats,
        elapsed_ns=t,
        local_io_ns=local_ns,
        remote_io_ns=remote_ns,
        warmup_ns=warmup_ns,
        warmed_up=warmed,
        total_bytes=trace.total_bytes,
    )
