"""Architecture builders: ION-local vs compute-local NVM (Figure 2).

These helpers assemble a complete storage path — file system (or UFS),
host interface, SSD — for the two cluster archetypes the paper
compares:

* :func:`make_ion_device` — Figure 2a: the SSD lives on an I/O node;
  compute nodes reach it over QDR InfiniBand through GPFS, sharing the
  device and the link (Carver's OoC partition runs 2 CNs per PCIe SSD:
  40 CNs over 20 SSDs),
* :func:`make_cnl_device` — Figure 2b: the SSD sits in the compute
  node on PCIe, formatted with a local file system or driven raw by
  UFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..fs.base import FileSystemModel
from ..fs.registry import make_fs
from ..interconnect import (
    INFINIBAND_QDR_4X,
    HostPath,
    bridged_pcie2,
    native_pcie3,
    network_path,
)
from ..nvm.bus import DDR800, ONFI3_SDR400, BusSpec
from ..nvm.kinds import NVMKind
from ..ssd.controller import SSDevice
from ..ssd.geometry import Geometry
from .ufs import UnifiedFileSystem

__all__ = ["StoragePath", "make_cnl_device", "make_ion_device"]

#: Carver OoC partition: 40 CNs / 20 ION PCIe SSDs (Figure 3).
ION_CLIENTS_PER_SSD = 2

#: GPFS client-stack efficiency over IPoIB/verbs on QDR (the stack the
#: paper's traces crossed).  Yields ~0.9 GB/s per CN, matching the
#: paper's ION-GPFS bars, which "run up against the throughput limit
#: for QDR Infiniband" as delivered end-to-end by GPFS.
GPFS_CLIENT_EFFICIENCY = 0.24


@dataclass
class StoragePath:
    """A fully-assembled storage path ready for trace replay."""

    name: str
    device: SSDevice
    fs: FileSystemModel
    clients: int = 1
    location: str = "CNL"  # "CNL" | "ION"

    def format_and_preload(self, file_sizes: dict[int, int]) -> None:
        """Lay out the files and pre-stage their contents on the NVM."""
        layout = self.fs.format(file_sizes)
        need = max(layout.device_bytes, getattr(self.fs, "allocated_bytes", 0))
        if need > self.device.ftl.n_logical_pages * self.device.geom.page_bytes:
            raise ValueError(
                f"{self.name}: device logical space too small for layout"
            )
        self.device.preload(need)


def _geometry(kind: NVMKind) -> Geometry:
    """The paper's device: 8 channels / 64 packages / 128 dies."""
    return Geometry(kind=kind)


def _logical_bytes(data_bytes: int) -> int:
    """Logical space: data + CoW/journal/metadata zones + slack."""
    return int(data_bytes * 2.0) + 512 * 1024 * 1024


def make_cnl_device(
    fs_name: str,
    kind: NVMKind,
    data_bytes: int,
    lanes: int = 8,
    native: bool = False,
    bus: Optional[BusSpec] = None,
    seed: int = 1013,
) -> StoragePath:
    """A compute-node-local SSD behind a local FS or UFS (Figure 2b).

    ``native=False`` gives the bridged PCIe 2.0 + ONFi SDR-400 device
    of Figure 5a; ``native=True`` the PCIe 3.0 + DDR-800 device of
    Figure 5b.  ``lanes`` selects 8 or 16 PCIe lanes (Section 4.4).
    """
    geom = _geometry(kind)
    host: HostPath = native_pcie3(lanes) if native else bridged_pcie2(lanes)
    nvm_bus = bus if bus is not None else (DDR800 if native else ONFI3_SDR400)
    is_ufs = fs_name.upper() == "UFS"
    fs: FileSystemModel
    if is_ufs:
        fs = UnifiedFileSystem(geom, seed=seed)
    else:
        fs = make_fs(fs_name, seed=seed)
    device = SSDevice(
        geometry=geom,
        bus=nvm_bus,
        host=host,
        logical_bytes=_logical_bytes(data_bytes),
        readahead_bytes=fs.readahead_bytes,
        name=f"CNL-{fs_name}",
        command_overhead_ns=0 if is_ufs else 5_000,
    )
    return StoragePath(
        name=f"CNL-{fs_name.upper()}", device=device, fs=fs, clients=1, location="CNL"
    )


def make_ion_device(
    kind: NVMKind,
    data_bytes: int,
    clients: int = ION_CLIENTS_PER_SSD,
    seed: int = 1013,
    gpfs_efficiency: Optional[float] = None,
) -> StoragePath:
    """The ION-resident SSD reached through GPFS over QDR IB (Fig. 2a).

    The host path models the CN-side GPFS client stack (RPC latency,
    IPoIB/verbs efficiency); ``clients`` compute nodes multiplex onto
    the one device, as in Carver's OoC partition.  ``gpfs_efficiency``
    overrides the calibrated per-client stack efficiency (used by the
    sensitivity analysis).
    """
    geom = _geometry(kind)
    eff = GPFS_CLIENT_EFFICIENCY if gpfs_efficiency is None else gpfs_efficiency
    host = network_path(
        INFINIBAND_QDR_4X,
        sharers=clients,
        rpc_overhead_ns=60_000,
        server_efficiency=eff * clients,
    )
    fs = make_fs("GPFS", seed=seed)
    device = SSDevice(
        geometry=geom,
        bus=ONFI3_SDR400,
        host=host,
        logical_bytes=_logical_bytes(data_bytes) * max(1, clients),
        readahead_bytes=fs.readahead_bytes,
        name="ION-GPFS",
        command_overhead_ns=5_000,
    )
    return StoragePath(
        name="ION-GPFS", device=device, fs=fs, clients=clients, location="ION"
    )
