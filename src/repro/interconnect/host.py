"""Host-side I/O paths: native PCIe, bridged SATA-behind-PCIe, network.

Figure 5 of the paper contrasts two SSD front-ends:

* **Bridged** (Fig. 5a): a PCIe endpoint that internally re-encodes to
  SATA/SAS toward multiple NAND controllers.  The bridge costs protocol
  re-encoding latency on every request and caps throughput at the
  minimum of the PCIe link and the aggregate SATA-side capacity.
* **Native** (Fig. 5b): NAND controllers are PCIe endpoints behind a
  switch — no re-encoding, full PCIe 3.0 efficiency.

For ION-resident storage the "host path" seen by a compute node is the
InfiniBand network plus the parallel-file-system RPC layer; the same
interface abstracts it so the SSD scheduler is agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .links import SATA_6G, LinkSpec, pcie_gen2, pcie_gen3

__all__ = ["HostPath", "bridged_pcie2", "native_pcie3", "network_path"]


@dataclass(frozen=True)
class HostPath:
    """Effective host data path used by the transaction scheduler.

    ``bytes_per_sec`` is the sustained payload rate, ``per_request_ns``
    the fixed protocol cost charged once per block request, and
    ``sharers`` divides the bandwidth between concurrent clients (ION
    configurations: several CNs per ION link).
    """

    name: str
    bytes_per_sec: float
    per_request_ns: int
    bridged: bool = False
    sharers: int = 1
    link: Optional[LinkSpec] = None

    @property
    def per_client_bytes_per_sec(self) -> float:
        return self.bytes_per_sec / max(1, self.sharers)

    def transfer_ns(self, nbytes: int) -> int:
        """Wire time for ``nbytes`` at the full (unshared) path rate."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return int(round(nbytes * 1e9 / self.bytes_per_sec))


def bridged_pcie2(lanes: int, sata_ports: int = 8) -> HostPath:
    """The common bridged PCIe-SSD front-end of Figure 5a.

    Throughput is the min of the PCIe 2.0 link and ``sata_ports``
    aggregated SATA 6G bridges; every request pays the SATA protocol
    re-encoding latency on top of PCIe's.
    """
    pcie = pcie_gen2(lanes)
    sata_aggregate = sata_ports * SATA_6G.effective_bytes_per_sec
    return HostPath(
        name=f"bridged {pcie.name} ({sata_ports}xSATA)",
        bytes_per_sec=min(pcie.effective_bytes_per_sec, sata_aggregate),
        per_request_ns=pcie.per_request_ns + SATA_6G.per_request_ns,
        bridged=True,
        link=pcie,
    )


def native_pcie3(lanes: int) -> HostPath:
    """The native PCIe 3.0 front-end of Figure 5b (no bridge)."""
    pcie = pcie_gen3(lanes)
    return HostPath(
        name=f"native {pcie.name}",
        bytes_per_sec=pcie.effective_bytes_per_sec,
        per_request_ns=pcie.per_request_ns,
        bridged=False,
        link=pcie,
    )


def network_path(
    link: LinkSpec,
    sharers: int = 1,
    rpc_overhead_ns: int = 50_000,
    server_efficiency: float = 0.85,
) -> HostPath:
    """A network-attached path (ION configurations).

    ``sharers`` compute nodes contend for one ION link; each request
    additionally pays a file-service RPC round trip
    (``rpc_overhead_ns``), and the server stack delivers only
    ``server_efficiency`` of the link payload rate.
    """
    if sharers < 1:
        raise ValueError("sharers must be >= 1")
    return HostPath(
        name=f"{link.name} via ION (/{sharers} CNs)",
        bytes_per_sec=link.effective_bytes_per_sec * server_efficiency,
        per_request_ns=link.per_request_ns + rpc_overhead_ns,
        bridged=False,
        sharers=sharers,
        link=link,
    )
