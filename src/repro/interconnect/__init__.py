"""Interconnect models: encoded links, bridged/native host paths."""

from .host import HostPath, bridged_pcie2, native_pcie3, network_path
from .links import (
    ETHERNET_40G,
    FIBRE_CHANNEL_8G,
    INFINIBAND_QDR_4X,
    SATA_6G,
    LinkSpec,
    pcie_gen2,
    pcie_gen3,
)

__all__ = [
    "LinkSpec",
    "pcie_gen2",
    "pcie_gen3",
    "SATA_6G",
    "INFINIBAND_QDR_4X",
    "FIBRE_CHANNEL_8G",
    "ETHERNET_40G",
    "HostPath",
    "bridged_pcie2",
    "native_pcie3",
    "network_path",
]
