"""Encoded serial-link models (PCIe, SATA, InfiniBand, Fibre Channel).

Section 3.3 of the paper quantifies interface overheads almost entirely
through line-encoding arithmetic:

* SATA 6G and PCIe 2.0 use 8b/10b encoding — 25 % of raw signalling is
  clock-recovery overhead,
* PCIe 3.0 uses 128b/130b — ~1.5 % overhead,
* QDR 4X InfiniBand signals 40 Gb/s with 8b/10b (4 GB/s per the Carver
  diagram, 3.2 GB/s of payload capacity).

On top of the encoding we apply a packetization efficiency (TLP/DLLP
headers for PCIe, FIS framing for SATA, verbs/MTU framing for IB) and a
per-request protocol latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "LinkSpec",
    "pcie_gen2",
    "pcie_gen3",
    "SATA_6G",
    "INFINIBAND_QDR_4X",
    "FIBRE_CHANNEL_8G",
    "ETHERNET_40G",
]


@dataclass(frozen=True)
class LinkSpec:
    """One encoded, full-duplex serial link.

    ``gbits_raw_per_lane`` is the raw signalling rate; payload bandwidth
    is ``raw * lanes * encoding_num/encoding_den * packet_efficiency``.
    """

    name: str
    gbits_raw_per_lane: float
    lanes: int
    encoding_num: int
    encoding_den: int
    packet_efficiency: float = 1.0
    per_request_ns: int = 1_000

    @property
    def encoding_efficiency(self) -> float:
        return self.encoding_num / self.encoding_den

    @property
    def encoding_overhead(self) -> float:
        """Fraction of raw signalling lost to line encoding."""
        return 1.0 - self.encoding_efficiency

    @property
    def raw_bytes_per_sec(self) -> float:
        return self.gbits_raw_per_lane * self.lanes * 1e9 / 8.0

    @property
    def effective_bytes_per_sec(self) -> float:
        """Deliverable payload bandwidth after encoding + packetization."""
        return self.raw_bytes_per_sec * self.encoding_efficiency * self.packet_efficiency

    def transfer_ns(self, nbytes: int) -> int:
        """Wire time to move ``nbytes`` of payload (excludes latency)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return int(round(nbytes * 1e9 / self.effective_bytes_per_sec))

    def request_ns(self, nbytes: int) -> int:
        """Protocol latency plus wire time for one request."""
        return self.per_request_ns + self.transfer_ns(nbytes)

    def with_lanes(self, lanes: int) -> "LinkSpec":
        """The same link scaled to a different lane count."""
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        base = self.name.split(" x")[0]
        return replace(self, name=f"{base} x{lanes}", lanes=lanes)

    def degraded(
        self, bandwidth_factor: float = 0.5, extra_latency_ns: int = 0
    ) -> "LinkSpec":
        """A derated copy of this link (lossy-fabric what-ifs).

        ``bandwidth_factor`` scales deliverable payload bandwidth (0.5 =
        half the lanes alive / heavy retransmit); ``extra_latency_ns``
        adds per-request protocol latency (retraining, error recovery).
        Used by fault injection and directly for degraded ION-vs-CNL
        comparisons.
        """
        if not 0.0 < bandwidth_factor <= 1.0:
            raise ValueError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor!r}"
            )
        if extra_latency_ns < 0:
            raise ValueError("extra_latency_ns must be >= 0")
        return replace(
            self,
            name=f"{self.name} (degraded {bandwidth_factor:g}x)",
            packet_efficiency=self.packet_efficiency * bandwidth_factor,
            per_request_ns=self.per_request_ns + extra_latency_ns,
        )


def pcie_gen2(lanes: int) -> LinkSpec:
    """PCIe 2.0: 5 GT/s/lane, 8b/10b, ~80 % packet efficiency.

    500 MB/s/lane post-encoding, 400 MB/s/lane deliverable — matching
    the paper's "approximately 2 GBps" for a typical 4-lane device.
    """
    return LinkSpec(
        name=f"PCIe2.0 x{lanes}",
        gbits_raw_per_lane=5.0,
        lanes=lanes,
        encoding_num=8,
        encoding_den=10,
        packet_efficiency=0.78,
        per_request_ns=1_500,
    )


def pcie_gen3(lanes: int) -> LinkSpec:
    """PCIe 3.0: 8 GT/s/lane, 128b/130b (~1.5 % overhead), ~97 % packets."""
    return LinkSpec(
        name=f"PCIe3.0 x{lanes}",
        gbits_raw_per_lane=8.0,
        lanes=lanes,
        encoding_num=128,
        encoding_den=130,
        packet_efficiency=0.97,
        per_request_ns=1_000,
    )


#: SATA 6G (one port): 6 GT/s, 8b/10b, FIS framing.
SATA_6G = LinkSpec(
    name="SATA-6G",
    gbits_raw_per_lane=6.0,
    lanes=1,
    encoding_num=8,
    encoding_den=10,
    packet_efficiency=0.92,
    per_request_ns=5_000,
)

#: QDR 4X InfiniBand as deployed on Carver: 4 x 10 Gb/s, 8b/10b.
INFINIBAND_QDR_4X = LinkSpec(
    name="IB-QDR-4X",
    gbits_raw_per_lane=10.0,
    lanes=4,
    encoding_num=8,
    encoding_den=10,
    packet_efficiency=0.90,
    per_request_ns=2_000,
)

#: 8 Gb Fibre Channel (ION back-end to the RAID enclosures).
FIBRE_CHANNEL_8G = LinkSpec(
    name="FC-8G",
    gbits_raw_per_lane=8.5,
    lanes=1,
    encoding_num=8,
    encoding_den=10,
    packet_efficiency=0.90,
    per_request_ns=10_000,
)

#: 40 GbE, the "network catches up" counter-argument of Section 4.3.
ETHERNET_40G = LinkSpec(
    name="40GbE",
    gbits_raw_per_lane=10.3125,
    lanes=4,
    encoding_num=64,
    encoding_den=66,
    packet_efficiency=0.85,
    per_request_ns=4_000,
)
