"""GPFS (General Parallel File System) behavioural model.

GPFS stripes every file across the NSD servers in fixed-size blocks
and allocates those blocks round-robin across disk regions, which is
exactly the transform Figure 6 visualizes: the largely-sequential
POSIX stream of the OoC application arrives at the ION's SSD as
scattered, block-sized pieces ("GPFS divides up what was previously
largely sequential ... which deteriorates performance for NVMs that
enjoy best performance when all of the dies are accessed at once").

We model the per-SSD view: file blocks are placed through a seeded
permutation of the device's block slots, and each block is served as
sub-block-sized device commands.  The network/RPC cost of reaching the
ION lives in the host path (:func:`repro.interconnect.network_path`),
not here.
"""

from __future__ import annotations

import numpy as np

from ..ssd.request import CommandGroup, DeviceCommand, PosixRequest
from .base import FileLayout, FileSystemModel, FsParams, KiB, MiB

__all__ = ["gpfs", "GpfsModel"]


class GpfsModel(FileSystemModel):
    """GPFS striping: permuted block placement + sub-block commands."""

    def __init__(self, params: FsParams, stripe_bytes: int = 1 * MiB):
        super().__init__(params)
        if stripe_bytes % params.block_bytes:
            raise ValueError("stripe must be a whole number of blocks")
        self.stripe_bytes = stripe_bytes
        self._perm: np.ndarray | None = None
        self._file_base: dict[int, int] = {}

    def format(self, file_sizes: dict[int, int]) -> FileLayout:
        layout = super().format(file_sizes)
        # permute stripe slots over a zone 2x the data size, mimicking
        # round-robin allocation across the fleet's disk regions
        total = sum(file_sizes.values())
        n_slots = max(2, 2 * -(-total // self.stripe_bytes))
        rng = np.random.default_rng(self.params.seed + 7)
        self._perm = rng.permutation(n_slots)
        base = 0
        self._file_base = {}
        for fid in sorted(file_sizes):
            self._file_base[fid] = base
            base += -(-file_sizes[fid] // self.stripe_bytes)
        return layout

    def _stripe_lba(self, file_id: int, stripe_idx: int) -> int:
        assert self._perm is not None, "format() not called"
        slot = self._file_base[file_id] + stripe_idx
        return int(self._perm[slot % len(self._perm)]) * self.stripe_bytes

    def _stripe_runs(self, req: PosixRequest) -> list[tuple[int, int]]:
        """(lba, nbytes) runs after striping — scattered per stripe."""
        runs = []
        pos = req.offset
        end = req.offset + req.nbytes
        sb = self.stripe_bytes
        while pos < end:
            stripe = pos // sb
            hi = min(end, (stripe + 1) * sb)
            lba = self._stripe_lba(req.file_id, stripe) + (pos - stripe * sb)
            runs.append((lba, hi - pos))
            pos = hi
        return runs

    def translate(self, req: PosixRequest, client: int = 0) -> CommandGroup:
        cmds: list[DeviceCommand] = []
        if req.op == "read":
            for lba, length in self._stripe_runs(req):
                cmds.extend(self._meta_reads(length))
                cmds.extend(self._split("read", lba, length))
        else:
            for lba, length in self._stripe_runs(req):
                cmds.extend(self._split("write", lba, length))
            # GPFS recovery-log append + flush
            jlba = self.layout.journal_alloc(self.params.journal_commit_bytes)
            cmds.append(
                DeviceCommand(
                    op="write",
                    lba=jlba,
                    nbytes=self.params.journal_commit_bytes,
                    kind="journal",
                    barrier=True,
                )
            )
        return CommandGroup(posix=req, commands=cmds, client=client)


def gpfs(
    seed: int = 1013,
    stripe_mib: int = 1,
    service_unit_kib: int = 128,
    prefetch_mib: int = 2,
) -> GpfsModel:
    """GPFS as deployed on Carver's IONs.

    Defaults model the deployment the paper traced: 1 MiB stripes
    served in 128 KiB pieces with aggressive server-side prefetch.
    The knobs expose the Section-4.2 observation that "larger stripes
    combat this randomizing trend, but only to limited extents".
    """
    return GpfsModel(
        FsParams(
            name="GPFS",
            block_bytes=4 * KiB,
            max_request_bytes=service_unit_kib * KiB,
            readahead_bytes=prefetch_mib * MiB,
            alloc_run_bytes=1 * MiB,
            alloc_gap_blocks=3,
            journaling=None,
            metadata_read_interval_bytes=64 * MiB,
            seed=seed,
        ),
        stripe_bytes=stripe_mib * MiB,
    )
