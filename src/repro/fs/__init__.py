"""Behavioural file-system models (Section 3.2 / 4.3 of the paper)."""

from .base import Extent, FileLayout, FileSystemModel, FsParams
from .btrfs import btrfs
from .ext import ext2, ext3, ext4, ext4_large
from .gpfs import GpfsModel, gpfs
from .jfs import jfs
from .registry import FS_FACTORIES, LOCAL_FS_NAMES, make_fs
from .reiserfs import reiserfs
from .xfs import xfs

__all__ = [
    "FsParams",
    "FileLayout",
    "FileSystemModel",
    "Extent",
    "ext2",
    "ext3",
    "ext4",
    "ext4_large",
    "xfs",
    "jfs",
    "btrfs",
    "reiserfs",
    "gpfs",
    "GpfsModel",
    "FS_FACTORIES",
    "LOCAL_FS_NAMES",
    "make_fs",
]
