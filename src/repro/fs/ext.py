"""The extended file-system family: ext2, ext3, ext4 and tuned ext4-L.

Behavioural rationale (Section 4.3 discusses all four):

* **ext2** — block-mapped (indirect pointer blocks every ~4 MiB of
  data), no journal, legacy 128 KiB read-ahead and small coalesced
  requests; the paper's lowest performer.
* **ext3** — ext2 plus an ordered-mode journal; reads behave like ext2
  with marginally better allocation (reservation windows).
* **ext4** — extent trees (few metadata reads), delayed allocation
  (long contiguous runs), larger read-ahead; ordered journal.
* **ext4-L** — ext4 with the paper's "large request sizes" tuning:
  "simply turning a few kernel knobs ... related to the number of file
  system requests that can be coalesced together at the block device
  layer", worth about 1 GB/s in Figure 7a.
"""

from __future__ import annotations

from .base import FileSystemModel, FsParams, KiB, MiB

__all__ = ["ext2", "ext3", "ext4", "ext4_large"]


def ext2(seed: int = 1013) -> FileSystemModel:
    """ext2: block-mapped, unjournaled, small windows."""
    return FileSystemModel(
        FsParams(
            name="EXT2",
            block_bytes=4 * KiB,
            max_request_bytes=128 * KiB,
            readahead_bytes=368 * KiB,
            alloc_run_bytes=512 * KiB,
            alloc_gap_blocks=7,
            journaling=None,
            metadata_read_interval_bytes=4 * MiB,  # indirect blocks
            seed=seed,
        )
    )


def ext3(seed: int = 1013, data_journal: bool = False) -> FileSystemModel:
    """ext3: ext2 allocation lineage plus a journal.

    ``data_journal=True`` selects ``data=journal`` mode (full data
    journaling: every byte written twice), the safest and slowest of
    ext3's mount options; the default is ``data=ordered``.
    """
    return FileSystemModel(
        FsParams(
            name="EXT3-J" if data_journal else "EXT3",
            block_bytes=4 * KiB,
            max_request_bytes=128 * KiB,
            readahead_bytes=384 * KiB,
            alloc_run_bytes=1 * MiB,
            alloc_gap_blocks=7,
            journaling="data" if data_journal else "ordered",
            metadata_read_interval_bytes=4 * MiB,
            seed=seed,
        )
    )


def ext4(seed: int = 1013, journal: bool = True) -> FileSystemModel:
    """ext4: extents + delayed allocation.

    ``journal=False`` models the ``^has_journal`` tuning (no jbd2 at
    all) sometimes used for scratch file systems.
    """
    return FileSystemModel(
        FsParams(
            name="EXT4" if journal else "EXT4-NJ",
            block_bytes=4 * KiB,
            max_request_bytes=256 * KiB,
            readahead_bytes=640 * KiB,
            alloc_run_bytes=8 * MiB,
            alloc_gap_blocks=3,
            journaling="ordered" if journal else None,
            metadata_read_interval_bytes=32 * MiB,  # extent-tree nodes
            seed=seed,
        )
    )


def ext4_large(seed: int = 1013) -> FileSystemModel:
    """ext4-L: ext4 with large-request block-layer tuning (Fig. 7a)."""
    return FileSystemModel(
        FsParams(
            name="EXT4-L",
            block_bytes=4 * KiB,
            max_request_bytes=1 * MiB,
            readahead_bytes=2 * MiB,
            alloc_run_bytes=8 * MiB,
            alloc_gap_blocks=3,
            journaling="ordered",
            metadata_read_interval_bytes=32 * MiB,
            seed=seed,
        )
    )
