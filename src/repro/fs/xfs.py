"""XFS behavioural model.

XFS is extent-based with aggressive contiguous allocation (allocation
groups, delayed allocation) and a metadata-only journal; its block
layer sustains fairly large coalesced requests.  In Figure 7a it sits
mid-pack — above the block-mapped exts, below BTRFS and ext4-L.
"""

from __future__ import annotations

from .base import FileSystemModel, FsParams, KiB, MiB

__all__ = ["xfs"]


def xfs(seed: int = 1013) -> FileSystemModel:
    """XFS: extents, big allocation runs, metadata journal."""
    return FileSystemModel(
        FsParams(
            name="XFS",
            block_bytes=4 * KiB,
            max_request_bytes=512 * KiB,
            readahead_bytes=768 * KiB,
            alloc_run_bytes=16 * MiB,
            alloc_gap_blocks=3,
            journaling="ordered",
            metadata_read_interval_bytes=48 * MiB,
            seed=seed,
        )
    )
