"""ReiserFS behavioural model.

B+-tree based with tail packing and an ordered journal; its tree
traversals inject metadata reads relatively often and its block layer
keeps moderate windows.  Mid-low placement in Figure 7a.
"""

from __future__ import annotations

from .base import FileSystemModel, FsParams, KiB, MiB

__all__ = ["reiserfs"]


def reiserfs(seed: int = 1013) -> FileSystemModel:
    """ReiserFS: B+-tree metadata, ordered journal, moderate windows."""
    return FileSystemModel(
        FsParams(
            name="REISERFS",
            block_bytes=4 * KiB,
            max_request_bytes=256 * KiB,
            readahead_bytes=512 * KiB,
            alloc_run_bytes=2 * MiB,
            alloc_gap_blocks=5,
            journaling="ordered",
            metadata_read_interval_bytes=8 * MiB,  # tree node reads
            seed=seed,
        )
    )
