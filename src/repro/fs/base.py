"""Behavioural file-system model base.

Section 4.2 of the paper reduces each file system to *how it mutates
the application's access pattern* between the POSIX interface and the
block device: block sizing, request splitting/coalescing limits,
allocation fragmentation, journaling and metadata traffic injected
"in the midst of the rest of the data accesses".  This module provides
that transform as an explicit, parameterized model:

* :class:`FsParams` — the per-file-system behavioural parameters,
* :class:`FileLayout` — a deterministic extent allocation of the files
  (fragmentation, alignment),
* :class:`FileSystemModel` — translates :class:`PosixRequest` streams
  into :class:`CommandGroup` streams for the SSD replay engine.

The concrete Linux file systems (ext2/3/4, ext4-L, XFS, JFS, BTRFS,
ReiserFS) are parameterizations in their own modules; GPFS adds the
striping transform; the paper's UFS (in :mod:`repro.core.ufs`) bypasses
this machinery entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, NamedTuple, Optional

import numpy as np

from ..ssd.request import CommandGroup, DeviceCommand, PosixRequest

__all__ = ["FsParams", "Extent", "FileLayout", "FileSystemModel"]

KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class FsParams:
    """Behavioural parameters of one file system.

    ``readahead_bytes`` is the kernel read-ahead / in-flight window the
    file system sustains for a sequential stream; ``max_request_bytes``
    the largest block-layer request it lets the elevator coalesce (the
    knob the paper turns for ext4-L); ``alloc_run_bytes`` the typical
    contiguous extent the allocator achieves before jumping, and
    ``alloc_gap_blocks`` the typical jump distance in blocks (odd gaps
    destroy NVM page alignment, costing read amplification on media
    with pages larger than the FS block).
    """

    name: str
    block_bytes: int = 4 * KiB
    max_request_bytes: int = 512 * KiB
    readahead_bytes: int = 512 * KiB
    alloc_run_bytes: int = 4 * MiB
    alloc_gap_blocks: int = 5
    #: journaling mode: None, "ordered" (metadata journal, data first)
    #: or "data" (full data journaling, data written twice)
    journaling: Optional[str] = None
    #: journal commit record size and journal descriptor bytes per MiB
    journal_commit_bytes: int = 4 * KiB
    journal_desc_bytes_per_mib: int = 4 * KiB
    #: one small metadata read every this many data bytes (indirect
    #: blocks for block-mapped FSes, tree nodes for extent FSes)
    metadata_read_interval_bytes: int = 64 * MiB
    metadata_read_bytes: int = 4 * KiB
    #: copy-on-write allocation for overwrites (BTRFS)
    cow: bool = False
    seed: int = 1013

    def __post_init__(self):
        if self.block_bytes < 512 or self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a power of two >= 512")
        if self.max_request_bytes < self.block_bytes:
            raise ValueError("max_request_bytes smaller than a block")
        if self.journaling not in (None, "ordered", "data"):
            raise ValueError(f"unknown journaling mode {self.journaling!r}")


class Extent(NamedTuple):
    """One contiguous file-offset -> LBA mapping run (bytes)."""

    file_off: int
    lba: int
    length: int


class FileLayout:
    """Deterministic extent layout of a set of files.

    The data zone starts at LBA 0; the journal and metadata zones sit
    past the data zone, mimicking their distant on-disk placement that
    makes journal/metadata traffic *random* relative to the data
    stream.
    """

    def __init__(self, params: FsParams, file_sizes: dict[int, int]):
        self.params = params
        self.extents: dict[int, list[Extent]] = {}
        rng = np.random.default_rng(params.seed)
        bb = params.block_bytes
        cursor = 0
        for file_id in sorted(file_sizes):
            size = file_sizes[file_id]
            if size <= 0:
                raise ValueError(f"file {file_id} has non-positive size")
            runs: list[Extent] = []
            off = 0
            while off < size:
                run = int(params.alloc_run_bytes * (0.75 + 0.5 * rng.random()))
                run = max(bb, (run // bb) * bb)
                run = min(run, size - off)
                runs.append(Extent(off, cursor, run))
                off += run
                # allocator jump: a few blocks of slack/metadata between
                # extents; odd block counts break NVM page alignment
                gap = int(rng.integers(1, max(2, params.alloc_gap_blocks + 1))) * bb
                cursor += run + gap
            self.extents[file_id] = runs
        self.data_zone_end = cursor
        # copy-on-write allocation zone past the data
        self.cow_lba = self._align_up(cursor, MiB)
        self.cow_bytes = 128 * MiB
        self._cow_head = 0
        # journal zone: 128 MiB circular log past the CoW zone
        self.journal_lba = self.cow_lba + self.cow_bytes
        self.journal_bytes = 128 * MiB
        self._journal_head = 0
        # metadata zone past the journal
        self.metadata_lba = self.journal_lba + self.journal_bytes
        self.metadata_bytes = 64 * MiB
        self._rng = rng

    @staticmethod
    def _align_up(x: int, align: int) -> int:
        return -(-x // align) * align

    @property
    def device_bytes(self) -> int:
        """Logical device size needed to hold everything."""
        return self.metadata_lba + self.metadata_bytes

    def lookup(self, file_id: int, offset: int, nbytes: int) -> list[tuple[int, int]]:
        """Map a file extent to ``(lba, length)`` runs."""
        if file_id not in self.extents:
            raise KeyError(f"unknown file {file_id}")
        runs = []
        remaining = nbytes
        pos = offset
        for ext in self.extents[file_id]:
            if remaining <= 0:
                break
            lo = max(pos, ext.file_off)
            hi = min(pos + remaining, ext.file_off + ext.length)
            if hi > lo:
                runs.append((ext.lba + (lo - ext.file_off), hi - lo))
                remaining -= hi - lo
                pos = hi
        if remaining > 0:
            raise ValueError(
                f"extent [{offset}, {offset + nbytes}) exceeds file {file_id}"
            )
        return runs

    def journal_alloc(self, nbytes: int) -> int:
        """Next journal LBA (circular log)."""
        lba = self.journal_lba + (self._journal_head % (self.journal_bytes // 2))
        self._journal_head += nbytes
        return lba

    def cow_alloc(self, nbytes: int) -> int:
        """Next copy-on-write allocation LBA (circular over its zone)."""
        lba = self.cow_lba + (self._cow_head % (self.cow_bytes // 2))
        self._cow_head += nbytes
        return lba

    def metadata_block(self, key: int) -> int:
        """Deterministic LBA of a metadata structure."""
        span = self.metadata_bytes // self.params.block_bytes
        idx = (key * 2654435761) % span
        return self.metadata_lba + idx * self.params.block_bytes


class FileSystemModel:
    """Translate POSIX requests into device command groups."""

    def __init__(self, params: FsParams):
        self.params = params
        self._layout: Optional[FileLayout] = None
        self._meta_progress = 0  # bytes since the last metadata read

    @property
    def name(self) -> str:
        return self.params.name

    @property
    def readahead_bytes(self) -> Optional[int]:
        return self.params.readahead_bytes

    def format(self, file_sizes: dict[int, int]) -> FileLayout:
        """Lay out the files; must be called before translation."""
        self._layout = FileLayout(self.params, file_sizes)
        self._meta_progress = 0
        return self._layout

    @property
    def layout(self) -> FileLayout:
        if self._layout is None:
            raise RuntimeError(f"{self.name}: format() not called")
        return self._layout

    # ------------------------------------------------------------------
    def translate(self, req: PosixRequest, client: int = 0) -> CommandGroup:
        """One POSIX request -> one command group."""
        if req.op == "read":
            cmds = self._translate_read(req)
        else:
            cmds = self._translate_write(req)
        return CommandGroup(posix=req, commands=cmds, client=client)

    def translate_all(
        self, reqs: Iterable[PosixRequest], client: int = 0
    ) -> list[CommandGroup]:
        """Translate a whole trace."""
        return [self.translate(r, client=client) for r in reqs]

    # -- reads ----------------------------------------------------------
    def _translate_read(self, req: PosixRequest) -> list[DeviceCommand]:
        cmds: list[DeviceCommand] = []
        runs = self.layout.lookup(req.file_id, req.offset, req.nbytes)
        for lba, length in runs:
            cmds.extend(self._meta_reads(length))
            cmds.extend(self._split(op="read", lba=lba, nbytes=length))
        return cmds

    def _meta_reads(self, data_bytes: int) -> list[DeviceCommand]:
        """Inject periodic metadata reads (indirect blocks/tree nodes)."""
        p = self.params
        out: list[DeviceCommand] = []
        self._meta_progress += data_bytes
        while self._meta_progress >= p.metadata_read_interval_bytes:
            self._meta_progress -= p.metadata_read_interval_bytes
            key = self._meta_progress + data_bytes
            out.append(
                DeviceCommand(
                    op="read",
                    lba=self.layout.metadata_block(key),
                    nbytes=p.metadata_read_bytes,
                    kind="metadata",
                )
            )
        return out

    def _split(self, op: str, lba: int, nbytes: int, kind: str = "data"):
        """Chop a run into block-aligned commands <= max_request_bytes."""
        p = self.params
        cmds = []
        pos = lba
        end = lba + nbytes
        while pos < end:
            # respect the coalescing cap and block alignment
            chunk_end = min(end, (pos // p.max_request_bytes + 1) * p.max_request_bytes)
            cmds.append(DeviceCommand(op=op, lba=pos, nbytes=chunk_end - pos, kind=kind))
            pos = chunk_end
        return cmds

    # -- writes ----------------------------------------------------------
    def _translate_write(self, req: PosixRequest) -> list[DeviceCommand]:
        p = self.params
        layout = self.layout
        cmds: list[DeviceCommand] = []
        runs = layout.lookup(req.file_id, req.offset, req.nbytes)
        if p.cow:
            # copy-on-write: overwrites land in freshly allocated space
            total = sum(length for _lba, length in runs)
            cmds.extend(self._split("write", layout.cow_alloc(total), total))
        else:
            for lba, length in runs:
                cmds.extend(self._split("write", lba, length))
        if p.journaling == "data":
            # full data journaling: data written twice (journal first)
            jlba = layout.journal_alloc(req.nbytes)
            cmds = self._split("write", jlba, req.nbytes, kind="journal") + cmds
        if p.journaling is not None or p.cow:
            # commit record + descriptors, then a write barrier
            desc = p.journal_desc_bytes_per_mib * max(1, req.nbytes // MiB)
            jlba = layout.journal_alloc(desc + p.journal_commit_bytes)
            cmds.append(
                DeviceCommand(
                    op="write", lba=jlba, nbytes=desc, kind="journal"
                )
            )
            cmds.append(
                DeviceCommand(
                    op="write",
                    lba=jlba + desc,
                    nbytes=p.journal_commit_bytes,
                    kind="journal",
                    barrier=True,
                )
            )
        return cmds
