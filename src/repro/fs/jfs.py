"""JFS (IBM Journaled File System) behavioural model.

Extent-based with a metadata journal; conservative read-ahead and
request sizing on Linux.  Figure 7a places it at the low end of the
compute-node-local pack, just above ext2/ext3.
"""

from __future__ import annotations

from .base import FileSystemModel, FsParams, KiB, MiB

__all__ = ["jfs"]


def jfs(seed: int = 1013) -> FileSystemModel:
    """JFS: extents, metadata journal, modest windows."""
    return FileSystemModel(
        FsParams(
            name="JFS",
            block_bytes=4 * KiB,
            max_request_bytes=128 * KiB,
            readahead_bytes=448 * KiB,
            alloc_run_bytes=2 * MiB,
            alloc_gap_blocks=5,
            journaling="ordered",
            metadata_read_interval_bytes=16 * MiB,
            seed=seed,
        )
    )
