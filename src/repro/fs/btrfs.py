"""BTRFS behavioural model.

Copy-on-write, extent-based, with checksum/metadata trees.  For the
paper's read-dominated pre-loaded workload its large extents and
aggressive read-ahead make it "the highest performing, non-tuned file
system" (Section 4.3) — about 2x ext2 on TLC.  Overwrites pay CoW
relocation plus tree commits.
"""

from __future__ import annotations

from .base import FileSystemModel, FsParams, KiB, MiB

__all__ = ["btrfs"]


def btrfs(seed: int = 1013) -> FileSystemModel:
    """BTRFS: CoW extents, checksum-tree reads, wide read-ahead."""
    return FileSystemModel(
        FsParams(
            name="BTRFS",
            block_bytes=4 * KiB,
            max_request_bytes=512 * KiB,
            readahead_bytes=1536 * KiB,
            alloc_run_bytes=8 * MiB,
            alloc_gap_blocks=3,
            journaling=None,  # CoW tree commits instead of a journal
            cow=True,
            metadata_read_interval_bytes=16 * MiB,  # csum-tree nodes
            metadata_read_bytes=16 * KiB,
            seed=seed,
        )
    )
