"""Registry of the file systems evaluated in the paper (Table 2)."""

from __future__ import annotations

from typing import Callable

from .base import FileSystemModel
from .btrfs import btrfs
from .ext import ext2, ext3, ext4, ext4_large
from .gpfs import gpfs
from .jfs import jfs
from .reiserfs import reiserfs
from .xfs import xfs

__all__ = ["FS_FACTORIES", "make_fs", "LOCAL_FS_NAMES"]

#: name -> factory for every file system the paper evaluates besides
#: UFS (which lives in :mod:`repro.core.ufs` since it replaces the FTL).
FS_FACTORIES: dict[str, Callable[..., FileSystemModel]] = {
    "GPFS": gpfs,
    "JFS": jfs,
    "BTRFS": btrfs,
    "XFS": xfs,
    "REISERFS": reiserfs,
    "EXT2": ext2,
    "EXT3": ext3,
    "EXT4": ext4,
    "EXT4-L": ext4_large,
}

#: The compute-node-local file systems, in the paper's Figure-7 order.
LOCAL_FS_NAMES = (
    "JFS",
    "BTRFS",
    "XFS",
    "REISERFS",
    "EXT2",
    "EXT3",
    "EXT4",
    "EXT4-L",
)


def make_fs(name: str, seed: int = 1013) -> FileSystemModel:
    """Instantiate a file-system model by its paper name."""
    try:
        factory = FS_FACTORIES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown file system {name!r}; have {sorted(FS_FACTORIES)}"
        ) from None
    return factory(seed=seed)
