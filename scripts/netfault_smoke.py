#!/usr/bin/env python3
"""CI smoke test for the lossy-fabric subsystem (repro.netfault).

Exercises the degraded-fabric path end to end, the way a user would:

1. run a two-rate loss sweep through the CLI with ``--trace``,
   ``--prom``, ``--stats-dir`` and ``-o``,
2. render the trace with ``python -m repro obs report`` and require
   >= 95% of simulated time attributed to named layers,
3. assert the Prometheus export carries the netfault gauge families and
   the absorbed per-link counters with loss-rate labels,
4. replay the shipped sample job trace at speed 0,
5. assert degradation is monotone in loss rate — delivered factor 1.0
   at loss 0, strictly below 1.0 under loss, and that a saturating rate
   surfaces as a typed ``unreachable`` calibration, never a hang.

Exit code 0 on success; any failure raises and exits non-zero.

Usage:
    PYTHONPATH=src python scripts/netfault_smoke.py [--scale 0.2]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: families the sweep's Prometheus export must expose
REQUIRED_FAMILIES = (
    "repro_netfault_delivered_factor",
    "repro_netfault_unreachable",
    "repro_netfault_bandwidth_mb",
    "repro_netfault_link_packets_sent",
    "repro_netfault_link_packets_lost",
    "repro_netfault_link_retransmits",
)


def run_cli(args: list[str]) -> subprocess.CompletedProcess:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}" + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"netfault_smoke: `repro {' '.join(args)}` failed")
    return proc


def smoke_sweep(tmp: Path, scale: float) -> None:
    trace = tmp / "trace.jsonl"
    prom = tmp / "netfault.prom"
    stats = tmp / "stats"
    out = run_cli(
        ["netfault", "--scale", str(scale), "--loss-rates", "0,0.05",
         "--labels", "CNL-UFS,ION-GPFS", "--kinds", "SLC",
         "--trace", str(trace), "--prom", str(prom),
         "--stats-dir", str(stats), "-o", str(tmp)]
    ).stdout
    assert "CNL vs ION under fabric degradation" in out, \
        "CLI must print the sweep table"
    assert "[netfault: 4 cells" in out, "expected the 4-cell footer"
    assert "[trace:" in out, "CLI must print the trace footer"
    assert (tmp / "netfault.txt").exists(), "-o must write netfault.txt"
    csv = stats / "net_stats.csv"
    assert csv.exists(), "--stats-dir must write net_stats.csv"
    assert csv.read_text().startswith("t_ns,link,"), "CSV header missing"
    print("netfault_smoke: CLI sweep OK")

    report = run_cli(
        ["obs", "report", str(trace), "--require-coverage", "0.95"]
    ).stdout
    assert "simulated time" in report and "wall time" in report
    assert "net" in report, "net-layer rows missing from the report"
    print("netfault_smoke: obs report + coverage gate OK")

    text = prom.read_text()
    for family in REQUIRED_FAMILIES:
        assert family in text, f"missing Prometheus family {family}"
    assert 'loss_rate="0.05"' in text, "lossy row missing from export"
    assert 'repro_netfault_delivered_factor{loss_rate="0"} 1.0' in text, \
        "loss-0 row must deliver the full healthy bandwidth"
    print(f"netfault_smoke: Prometheus export OK "
          f"({len(text.splitlines())} lines)")


def smoke_replay(tmp: Path) -> None:
    out = run_cli(
        ["netfault", "--replay", str(ROOT / "examples/trace_replay.jsonl"),
         "--speed", "0", "--cache-dir", str(tmp / "cache")]
    ).stdout
    assert "trace replay: 5 jobs" in out, "sample trace must replay 5 jobs"
    assert "0 failed" in out, "no job in the sample trace may fail"
    print("netfault_smoke: trace replay OK")


def smoke_degradation() -> None:
    from repro.cluster.ion import IonServiceConfig
    from repro.netfault import calibrate_fabric

    MiB = 1 << 20
    cfg = IonServiceConfig(bytes_per_client=8 * MiB)
    factors = [
        calibrate_fabric(rate, cfg=cfg).delivered_factor
        for rate in (0.0, 0.05, 0.2)
    ]
    assert factors[0] == 1.0, "loss 0 must be bit-identical to healthy"
    assert factors == sorted(factors, reverse=True), (
        f"delivered factor must be monotone in loss rate: {factors}"
    )
    assert factors[1] < 1.0, "5% loss must cost delivered bandwidth"

    saturated = calibrate_fabric(0.98, cfg=cfg)
    assert saturated.unreachable, (
        "a saturating loss rate must surface as typed unreachability"
    )
    assert saturated.delivered_factor == 0.0
    print(f"netfault_smoke: degradation OK (factors={factors}, "
          f"saturated -> unreachable)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2,
                        help="workload scale for the sweep (default 0.2)")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(SRC))
    with tempfile.TemporaryDirectory(prefix="netfault-smoke-") as tmp:
        smoke_sweep(Path(tmp), args.scale)
        smoke_replay(Path(tmp))
    smoke_degradation()
    print("netfault_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
