#!/usr/bin/env bash
# Static-analysis gate, mirroring the CI `lint` job exactly:
#   1. python -m repro lint   (DET/UNIT/SITE/POOL/SCHEMA/FLOW, baseline-gated)
#   2. python -m repro flow   (whole-program dataflow, reuses the lint cache)
#   3. ruff                   (pyflakes-class errors, pinned version)
#   4. mypy                   (strict on repro.lint + repro.faults)
# ruff/mypy are skipped with a warning when not installed locally
# (install them with `pip install -e .[lint]`); CI always installs the
# pinned versions from pyproject.toml, so the gate is authoritative there.
# Usage: scripts/lint.sh [--format json]
set -uo pipefail
cd "$(dirname "$0")/.."

status=0

echo "== repro lint =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro lint \
    --baseline lint-baseline.json --changed-only "$@"
rc=$?
if [ $rc -ne 0 ]; then
    status=$rc
    echo "repro lint failed (exit $rc). Reproduce with:" >&2
    echo "  PYTHONPATH=src python -m repro lint --baseline lint-baseline.json" >&2
fi

echo "== repro flow =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro flow \
    --baseline lint-baseline.json --changed-only "$@"
rc=$?
if [ $rc -ne 0 ]; then
    status=$rc
    echo "repro flow failed (exit $rc). Reproduce with:" >&2
    echo "  PYTHONPATH=src python -m repro flow --baseline lint-baseline.json" >&2
fi

echo "== ruff =="
if python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check src tests || status=1
else
    echo "ruff not installed; skipping (pip install -e .[lint])" >&2
fi

echo "== mypy =="
if python -m mypy --version >/dev/null 2>&1; then
    (cd src && python -m mypy -p repro) || status=1
else
    echo "mypy not installed; skipping (pip install -e .[lint])" >&2
fi

exit $status
