#!/usr/bin/env python3
"""Perf-regression gate over the ratcheted BENCH trajectory.

``benchmarks/test_perf_engine.py`` appends one line per run to
``benchmarks/BENCH_trajectory.jsonl`` with the batch kernel's speedup
over the in-run serial scalar baseline (a machine-normalized ratio —
wall seconds never cross machines).  This gate fails when the newest
entry's ``batch_speedup`` drops more than ``--tolerance`` (default
20%) below the best speedup ever recorded, so an accidental slowdown
of the columnar kernel cannot land silently, while the ratchet only
ever tightens as faster entries are recorded.

Entries may also carry ``obs_overhead`` — the fractional wall-time
cost of rerunning the same batch matrix with a live tracer installed
(``repro.obs``).  When the newest entry has it, the gate additionally
fails if it exceeds ``--obs-tolerance`` (default 25%): span emission
must stay at per-replay/per-cell granularity.  The *disabled*-tracer
budget (<= 2%) needs no separate check — instrumentation guards run on
the regular batch pass, so any disabled-path tax lowers
``batch_speedup`` and trips the ratchet itself.

Usage:
    python scripts/perf_gate.py [--trajectory PATH] [--tolerance 0.2]
                                [--obs-tolerance 0.25]

Exit codes: 0 pass, 1 regression, 2 unusable trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TRAJECTORY = Path(__file__).parent.parent / "benchmarks" / "BENCH_trajectory.jsonl"


def load_entries(path: Path) -> list[dict]:
    entries = []
    for i, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            print(f"perf_gate: skipping malformed line {i} of {path}", file=sys.stderr)
            continue
        if isinstance(entry, dict) and "batch_speedup" in entry:
            entries.append(entry)
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop below the best recorded speedup",
    )
    parser.add_argument(
        "--obs-tolerance",
        type=float,
        default=0.25,
        help="max fractional wall-time overhead of tracing-enabled runs",
    )
    args = parser.parse_args(argv)

    if not args.trajectory.exists():
        print(f"perf_gate: no trajectory at {args.trajectory}", file=sys.stderr)
        return 2
    entries = load_entries(args.trajectory)
    if not entries:
        print(f"perf_gate: no usable entries in {args.trajectory}", file=sys.stderr)
        return 2

    latest = float(entries[-1]["batch_speedup"])
    best = max(float(e["batch_speedup"]) for e in entries)
    floor = best * (1.0 - args.tolerance)
    verdict = "PASS" if latest >= floor else "FAIL"
    print(
        f"perf_gate: latest batch speedup {latest:.2f}x, best {best:.2f}x, "
        f"floor {floor:.2f}x ({args.tolerance:.0%} tolerance) -> {verdict} "
        f"[{len(entries)} entries]"
    )
    if latest < floor:
        print(
            "perf_gate: the columnar batch kernel regressed; either fix the "
            "slowdown or justify re-baselining in the PR.",
            file=sys.stderr,
        )
        return 1

    overhead = entries[-1].get("obs_overhead")
    if overhead is not None:
        overhead = float(overhead)
        obs_verdict = "PASS" if overhead <= args.obs_tolerance else "FAIL"
        print(
            f"perf_gate: tracing-enabled overhead {overhead:+.1%} "
            f"(budget {args.obs_tolerance:.0%}) -> {obs_verdict}"
        )
        if overhead > args.obs_tolerance:
            print(
                "perf_gate: enabling the tracer costs too much; spans must "
                "stay at per-replay/per-cell granularity, never inside "
                "per-transaction loops.",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
