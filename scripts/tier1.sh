#!/usr/bin/env bash
# Tier-1 smoke job: the fast correctness suite every PR must keep green.
# Usage: scripts/tier1.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python -m pytest -x -q "$@"
