#!/usr/bin/env bash
# Tier-1 smoke job: the fast correctness suite every PR must keep green.
# Usage: scripts/tier1.sh [extra pytest args]
set -uo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q "$@"
status=$?
# Propagate pytest's exit code explicitly and make the failure easy to
# reproduce from a CI log (the one-line repro is the part people miss).
if [ $status -ne 0 ]; then
    echo "" >&2
    echo "tier1 FAILED (pytest exit $status). Reproduce locally with:" >&2
    echo "  PYTHONPATH=src python -m pytest -x -q $*" >&2
fi
exit $status
