#!/usr/bin/env python
"""DetSan — the determinism sanitizer (dynamic counterpart to `repro flow`).

`python -m repro flow` proves statically that no wall-clock, hash- or
pid-dependent, or unpicklable value *flows* into a sim-domain result;
DetSan checks the same properties dynamically: it runs a small Table-2
slice under adversarial perturbations and byte-compares the canonical
JSON of every ConfigResult and the full sim-domain span tree against
an unperturbed base run.

Perturbation axes (each its own subprocess, since PYTHONHASHSEED only
takes effect at interpreter start):

* ``PYTHONHASHSEED`` 1 and 12345 — flushes out set/dict-iteration-order
  coupling (the dynamic face of FLOW002),
* ``REPRO_SIM_TIEBREAK=lifo`` — reverses DES same-timestamp event
  ordering via the :class:`repro.sim.Simulator` tie-break hook; any
  divergence means a model depended on scheduling accidents rather
  than simulated time,
* ``--workers 2`` — fans cells over a process pool (the dynamic face
  of FLOW003: results must not depend on which process computed them),
* ``--backend scalar`` — the frozen scalar reference vs the columnar
  batch kernel (claimed bit-identical; DetSan enforces it).

Exit codes: 0 all variants byte-identical, 1 divergence (diff printed),
2 usage/runtime error.

``--self-test`` checks the detector itself: a deliberately tie-order
coupled DES model must diverge under ``lifo``, and a clean model must
not.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

#: default slice: one DES-backed ION config + one CNL config, 2 kinds.
DEFAULT_LABELS = "ION-GPFS,CNL-EXT4"
DEFAULT_KINDS = "MLC,PCM"

#: ConfigResult fields that are *results*; provenance fields (backend,
#: metrics, faults) legitimately differ across variants and are
#: excluded from the canonical payload.
_RESULT_FIELDS = (
    "label",
    "kind",
    "bandwidth_mb",
    "aggregate_mb",
    "remaining_mb",
    "channel_utilization",
    "package_utilization",
    "breakdown",
    "parallelism",
)


# ---------------------------------------------------------------------------
# payload: runs in each subprocess, prints canonical JSON to stdout
# ---------------------------------------------------------------------------

def canonical_payload(
    labels: list[str],
    kinds: list[str],
    scale: float,
    workers: int,
    backend: str,
) -> str:
    """Run the slice and render results + sim span tree canonically.

    The Table-2 replay itself runs on the resource-timeline scheduler,
    not the DES engine, so the payload also runs the CN<->ION DES
    co-simulation (shared link + NSD-thread + SSD contention across
    clients) — that is what the ``tiebreak-lifo`` axis actually bites
    on.
    """
    from repro import obs
    from repro.cluster import IonServiceConfig, simulate_ion_service
    from repro.experiments import MatrixEngine, Workload

    MiB = 1024 * 1024
    workload = Workload(
        panels=max(2, int(round(4 * scale))), panel_bytes=2 * MiB
    )
    tracer = obs.install(obs.Tracer())
    try:
        engine = MatrixEngine(workers=workers, backend=backend)
        results = engine.run_matrix(labels, kinds, workload=workload)
    finally:
        obs.uninstall()

    cells = {}
    for (label, kind), r in sorted(results.items()):
        cells[f"{label}|{kind}"] = {
            f: getattr(r, f) for f in _RESULT_FIELDS
        }
    spans = sorted(
        (s.to_dict() for s in tracer.spans if s.domain == obs.SIM),
        key=lambda d: json.dumps(d, sort_keys=True),
    )

    ion = simulate_ion_service(
        IonServiceConfig(clients=4, bytes_per_client=8 * MiB)
    )
    ion_report = {
        "per_client_bytes_per_sec": {
            str(c): v for c, v in ion.per_client_bytes_per_sec.items()
        },
        "aggregate_bytes_per_sec": ion.aggregate_bytes_per_sec,
        "link_utilization": ion.link_utilization,
        "makespan_ns": ion.makespan_ns,
    }
    payload = {"cells": cells, "ion_des": ion_report, "sim_spans": spans}
    return json.dumps(payload, indent=1, sort_keys=True)


# ---------------------------------------------------------------------------
# driver: one subprocess per perturbation axis, byte-compare stdout
# ---------------------------------------------------------------------------

def _variants(workers: int) -> list[tuple[str, dict, list[str]]]:
    """(name, extra env, extra argv) per perturbation."""
    return [
        ("base", {}, []),
        ("hashseed-1", {"PYTHONHASHSEED": "1"}, []),
        ("hashseed-12345", {"PYTHONHASHSEED": "12345"}, []),
        ("tiebreak-lifo", {"REPRO_SIM_TIEBREAK": "lifo"}, []),
        (f"workers-{workers}", {}, ["--workers", str(workers)]),
        ("backend-scalar", {}, ["--backend", "scalar"]),
    ]


def _run_variant(args, env_extra: dict, argv_extra: list[str]) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.setdefault("PYTHONHASHSEED", "0")
    env.pop("REPRO_SIM_TIEBREAK", None)
    env.update(env_extra)
    cmd = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--emit",
        "--labels", args.labels,
        "--kinds", args.kinds,
        "--scale", str(args.scale),
        "--workers", "1",  # argparse keeps the last occurrence:
    ] + argv_extra  # the pool variant overrides with its own --workers
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=str(REPO)
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"variant subprocess failed (exit {proc.returncode}):\n"
            + proc.stderr
        )
    return proc.stdout


def _diff(base: str, other: str, name: str) -> str:
    lines = difflib.unified_diff(
        base.splitlines(keepends=True),
        other.splitlines(keepends=True),
        fromfile="base",
        tofile=name,
        n=2,
    )
    head = list(lines)[:40]
    return "".join(head)


def run_sanitizer(args) -> int:
    base = None
    failures = []
    for name, env_extra, argv_extra in _variants(args.workers):
        sys.stderr.write(f"detsan: running variant {name} ...\n")
        out = _run_variant(args, env_extra, argv_extra)
        if name == "base":
            base = out
            n_cells = len(json.loads(out)["cells"])
            n_spans = len(json.loads(out)["sim_spans"])
            sys.stderr.write(
                f"detsan: base payload: {n_cells} cells, "
                f"{n_spans} sim spans, {len(out)} bytes\n"
            )
            continue
        if out == base:
            sys.stderr.write(f"detsan: {name}: identical\n")
        else:
            failures.append(name)
            sys.stderr.write(f"detsan: {name}: DIVERGED\n")
            sys.stderr.write(_diff(base, out, name) + "\n")
    if failures:
        print(f"detsan: FAIL — divergent variants: {', '.join(failures)}")
        return 1
    print(
        "detsan: OK — results and sim span trees byte-identical across "
        "hash seeds, DES tie order, worker counts, and backends"
    )
    return 0


# ---------------------------------------------------------------------------
# self-test: the detector must catch a planted tie-order race
# ---------------------------------------------------------------------------

def _des_trace(model, tie_break: str) -> str:
    """Canonical JSON of one in-process DES run under ``tie_break``."""
    from repro.sim import Simulator

    sim = Simulator(tie_break=tie_break)
    out: list = []
    model(sim, out)
    sim.run()
    return json.dumps(out, sort_keys=True)


def _racy_model(sim, out) -> None:
    """Planted bug: result records *arrival order* of simultaneous events.

    Four workers finish at the same simulated instant; the model reports
    the order their completion callbacks ran — pure tie-order coupling,
    invisible to any single run.
    """
    def worker(tag: str, warmup: int):
        yield sim.timeout(warmup)
        yield sim.timeout(10 - warmup)  # all complete at t=10
        out.append(tag)

    for i, tag in enumerate("abcd"):
        sim.process(worker(tag, i + 1))


def _healthy_model(sim, out) -> None:
    """Same shape, but the result depends only on simulated time."""
    done: dict[str, int] = {}

    def worker(tag: str, warmup: int):
        yield sim.timeout(warmup)
        yield sim.timeout(10 - warmup)
        done[tag] = sim.now

    def reporter():
        yield sim.timeout(20)
        out.extend(sorted(done.items()))

    for i, tag in enumerate("abcd"):
        sim.process(worker(tag, i + 1))
    sim.process(reporter())


def run_self_test() -> int:
    sys.path.insert(0, str(SRC))
    ok = True

    racy_fifo = _des_trace(_racy_model, "fifo")
    racy_lifo = _des_trace(_racy_model, "lifo")
    if racy_fifo == racy_lifo:
        print(
            "detsan self-test: FAIL — the planted tie-order race was "
            "NOT detected (fifo and lifo traces identical)"
        )
        ok = False
    else:
        print(
            f"detsan self-test: planted race detected "
            f"(fifo={racy_fifo} lifo={racy_lifo})"
        )

    healthy_fifo = _des_trace(_healthy_model, "fifo")
    healthy_lifo = _des_trace(_healthy_model, "lifo")
    if healthy_fifo != healthy_lifo:
        print(
            "detsan self-test: FAIL — the healthy model diverged under "
            "lifo tie-breaking (false positive)"
        )
        ok = False
    else:
        print("detsan self-test: healthy model stable under lifo")

    print(f"detsan self-test: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="scripts/detsan.py",
        description="Determinism sanitizer: byte-compares a Table-2 "
        "slice across hash seeds, DES tie order, worker counts and "
        "backends.",
    )
    parser.add_argument("--labels", default=DEFAULT_LABELS)
    parser.add_argument("--kinds", default=DEFAULT_KINDS)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for the pool variant (default 2)",
    )
    parser.add_argument(
        "--backend",
        choices=("batch", "scalar"),
        default="batch",
        help="(payload mode) engine backend",
    )
    parser.add_argument(
        "--emit",
        action="store_true",
        help="internal: print the canonical payload for this interpreter",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the detector catches a planted tie-order race",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    labels = [s.strip() for s in args.labels.split(",") if s.strip()]
    kinds = [s.strip() for s in args.kinds.split(",") if s.strip()]
    if args.emit:
        sys.stdout.write(
            canonical_payload(
                labels, kinds, args.scale, args.workers, args.backend
            )
        )
        return 0
    try:
        return run_sanitizer(args)
    except RuntimeError as exc:
        print(f"detsan: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
