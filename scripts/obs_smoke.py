#!/usr/bin/env python3
"""CI smoke test for the observability stack (repro.obs).

Exercises the whole surface end to end, the way a user would:

1. run a small matrix slice through the CLI with ``--trace`` and
   ``--stats-dir``,
2. render the trace with ``python -m repro obs report`` and require
   >= 95% of simulated time attributed to named layers,
3. assert the per-layer breakdown is non-empty in both clock domains
   and the stats CSV has one row per cell,
4. start the real TCP service, run one job, and scrape the Prometheus
   ``{"op": "metrics"}`` endpoint for the required series.

Exit code 0 on success; any failure raises and exits non-zero.

Usage:
    PYTHONPATH=src python scripts/obs_smoke.py [--scale 0.2]
"""

from __future__ import annotations

import argparse
import asyncio
import csv
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: series the Prometheus endpoint must expose after one job
REQUIRED_SERIES = (
    "repro_service_completed",
    "repro_service_cache_hits",
    "repro_service_engine_cells",
    "repro_service_latency_p99_s",
)


def run_cli(args: list[str]) -> subprocess.CompletedProcess:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}" + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"obs_smoke: `repro {' '.join(args)}` failed")
    return proc


def smoke_cli_trace(tmp: Path, scale: float) -> None:
    trace = tmp / "trace.jsonl"
    stats_dir = tmp / "stats"
    out = run_cli(
        ["figure7", "--scale", str(scale),
         "--trace", str(trace), "--stats-dir", str(stats_dir)]
    ).stdout
    assert "[trace:" in out, "CLI must print the trace footer"
    assert "[stats:" in out, "CLI must print the stats footer"

    report = run_cli(
        ["obs", "report", str(trace), "--require-coverage", "0.95"]
    ).stdout
    assert "simulated time" in report and "wall time" in report
    # non-empty per-layer breakdown in both domains
    assert "cell" in report, "sim-domain layer rows missing"
    assert any(layer in report for layer in ("cli", "engine", "scheduler")), (
        "wall-domain layer rows missing"
    )
    print("obs_smoke: CLI trace + report + coverage gate OK")

    rows = list(csv.DictReader((stats_dir / "stats.csv").open()))
    cell_rows = [r for r in rows if r["event"] == "cell"]
    assert cell_rows, "stats.csv must have per-cell rows"
    assert all(r["label"] and r["kind"] for r in cell_rows)
    print(f"obs_smoke: stats.csv OK ({len(cell_rows)} cell rows)")


async def smoke_service_metrics() -> None:
    from repro.experiments import Workload
    from repro.service import (
        CellJob,
        ServiceClient,
        ServiceServer,
        SimulationService,
    )

    service = SimulationService(queue_limit=8, max_concurrency=1)
    server = ServiceServer(service, "127.0.0.1", 0)
    host, port = await server.start()
    try:
        client = await ServiceClient.connect(host, port)
        try:
            await client.submit(
                CellJob(
                    label="CNL-EXT4", kind="TLC",
                    workload=Workload(panels=2, panel_bytes=64 * 1024),
                    trace_id="obs-smoke",
                ).to_dict()
            )
            text = await client.metrics()
        finally:
            await client.close()
    finally:
        await server.close()

    assert text.strip(), "Prometheus exposition must be non-empty"
    for series in REQUIRED_SERIES:
        assert series in text, f"missing Prometheus series {series}"
    assert "# TYPE repro_service_completed counter" in text
    print(f"obs_smoke: service Prometheus endpoint OK "
          f"({len(text.splitlines())} lines)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2,
                        help="workload scale for the CLI slice (default 0.2)")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(SRC))
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        smoke_cli_trace(Path(tmp), args.scale)
    asyncio.run(smoke_service_metrics())
    print("obs_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
