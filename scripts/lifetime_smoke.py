#!/usr/bin/env python3
"""CI smoke test for the device-lifetime subsystem (repro.lifetime).

Exercises the aged-device sweep end to end, the way a user would:

1. run a one-config aged sweep (age 0 baseline + age 0.9) through the
   CLI with ``--trace``, ``--prom`` and ``-o``,
2. render the trace with ``python -m repro obs report`` and require
   >= 95% of simulated time attributed to named layers,
3. assert the Prometheus export carries every lifetime gauge family
   with age/policy labels,
4. assert the aged row actually degrades: fault probability rises from
   zero and blocks are retired at 90% of rated lifetime.

Exit code 0 on success; any failure raises and exits non-zero.

Usage:
    PYTHONPATH=src python scripts/lifetime_smoke.py [--scale 0.2]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: gauge families the sweep's Prometheus export must expose
REQUIRED_FAMILIES = (
    "repro_lifetime_bandwidth_mb",
    "repro_lifetime_p99_latency_ms",
    "repro_lifetime_waf",
    "repro_lifetime_wear_spread",
    "repro_lifetime_retired_blocks",
    "repro_lifetime_read_fault_p",
    "repro_lifetime_faults_injected",
)


def run_cli(args: list[str]) -> subprocess.CompletedProcess:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}" + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"lifetime_smoke: `repro {' '.join(args)}` failed")
    return proc


def smoke_sweep(tmp: Path, scale: float) -> None:
    trace = tmp / "trace.jsonl"
    prom = tmp / "lifetime.prom"
    out = run_cli(
        ["lifetime", "--scale", str(scale),
         "--labels", "CNL-UFS", "--kinds", "TLC", "--ages", "0,0.9",
         "--trace", str(trace), "--prom", str(prom), "-o", str(tmp)]
    ).stdout
    assert "Device lifetime sweep" in out, "CLI must print the sweep table"
    assert "[lifetime: 2 cells" in out, "expected the 2-cell footer"
    assert "[trace:" in out, "CLI must print the trace footer"
    assert (tmp / "lifetime.txt").exists(), "-o must write lifetime.txt"
    print("lifetime_smoke: CLI sweep OK")

    report = run_cli(
        ["obs", "report", str(trace), "--require-coverage", "0.95"]
    ).stdout
    assert "simulated time" in report and "wall time" in report
    assert "cell" in report, "sim-domain layer rows missing"
    print("lifetime_smoke: obs report + coverage gate OK")

    text = prom.read_text()
    for family in REQUIRED_FAMILIES:
        assert family in text, f"missing Prometheus family {family}"
    assert 'age="0.90"' in text, "aged row missing from export"
    assert 'policy="dynamic"' in text, "policy label missing from export"
    print(f"lifetime_smoke: Prometheus export OK "
          f"({len(text.splitlines())} lines)")


def smoke_degradation(scale: float) -> None:
    from repro.experiments.runner import Workload
    from repro.lifetime import WearPolicy, run_lifetime_cell

    MiB = 1 << 20
    workload = Workload(
        panels=max(2, int(round(12 * scale))), panel_bytes=8 * MiB
    )
    cells = {
        age: run_lifetime_cell(
            "CNL-UFS", "TLC", age, policy=WearPolicy(kind="dynamic"),
            workload=workload,
        )
        for age in (0.0, 0.9)
    }
    fresh, aged = cells[0.0], cells[0.9]
    assert fresh.read_fault_p == 0.0 and fresh.retired_blocks == 0
    assert aged.read_fault_p > 0.0, "aged device must see ECC retries"
    assert aged.retired_blocks > 0, "90% age must retire blocks"
    assert aged.p99_latency_ms > fresh.p99_latency_ms, (
        "retries must show up in tail latency"
    )
    print(f"lifetime_smoke: degradation OK (retired={aged.retired_blocks}, "
          f"p99 {fresh.p99_latency_ms:.3f} -> {aged.p99_latency_ms:.3f} ms)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2,
                        help="workload scale for the sweep (default 0.2)")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(SRC))
    with tempfile.TemporaryDirectory(prefix="lifetime-smoke-") as tmp:
        smoke_sweep(Path(tmp), args.scale)
    smoke_degradation(args.scale)
    print("lifetime_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
